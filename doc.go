// Package stochroute is a Go reproduction of "A Hybrid Learning Approach
// to Stochastic Routing" (Pedersen, Yang, Jensen; ICDE 2020).
//
// Road-network edges have uncertain travel times, and the travel times
// of adjacent edges are spatially dependent: convolving per-edge
// histograms — the classical way to compute a path's travel-time
// distribution — systematically invents outcomes that never occur. The
// paper's Hybrid Model pairs a learned distribution-estimation model
// with a binary classifier that decides, at every intersection, whether
// to convolve (independent pair) or estimate (dependent pair). On top of
// the model sits Probabilistic Budget Routing: given a source, a
// destination and a time budget t, find the path that maximises the
// probability of arriving within t, with an anytime variant that returns
// the best known path when a run-time limit expires.
//
// The package is a facade over the internal implementation:
//
//   - internal/hist — histogram travel-time distributions (convolution,
//     shifting, dominance, divergences) plus the allocation-free kernel
//     primitives: scratch-buffer forms of the hot operations
//     (ConvolveInto, CDFShifted, the In-Place mutators) and the
//     per-search Arena that owns the flat float64 storage behind every
//     routing label
//   - internal/graph, internal/netgen, internal/osm — the road-network
//     substrate: CSR graphs, a synthetic city generator, an OSM parser
//   - internal/traj — the traffic world model and trajectory simulation
//     standing in for GPS fleet data, including the time-of-day
//     machinery: departure timestamps (SRT2 codec), per-slice world
//     mode priors and the sliced observation aggregate
//   - internal/ml — from-scratch neural networks and logistic regression
//   - internal/hybrid — the paper's contribution: the hybrid cost model
//   - internal/routing — Dijkstra baselines and Probabilistic Budget
//     Routing with the paper's four prunings and the anytime extension
//   - internal/server — the concurrent routing service: an HTTP/JSON
//     API over a shared engine — single queries and POST /route/batch —
//     with an epoch-validated sharded LRU result cache (run it with
//     cmd/serve, measure it with cmd/loadgen)
//   - internal/ingest — the write path: streaming trajectory ingestion
//     with drift detection and background retraining, published
//     through the engine's epoch-tagged model hot swap (exercise it
//     end to end with cmd/replay against POST /ingest)
//   - internal/exp — the harness that regenerates every table of the
//     paper's evaluation
//
// # The allocation-free cost kernel
//
// A budget-routing query spends nearly all of its time extending label
// distributions: convolve (or estimate) an incoming histogram with the
// next edge, truncate it at the budget horizon, read a few CDFs,
// discard most candidates. Doing that with immutable heap values makes
// the allocator the bottleneck, so the distribution pipeline is built
// as a reusable kernel threaded through every layer:
//
//   - internal/hist provides the scratch-buffer primitives —
//     ConvolveInto(dst, a, b), CDFShifted (pivot pruning's cost
//     shifting without cloning), TruncateAboveInPlace /
//     CapBucketsInPlace / TrimInPlace — and a per-search hist.Arena
//     owning flat []float64 blocks with size-class recycling.
//   - internal/hybrid extends the Coster contract with the OPTIONAL
//     hybrid.ScratchCoster capability: ExtendInto/InitialHistInto write
//     into a per-search hybrid.Scratch (arena + feature vector + MLP
//     activation buffers + predicted-conditional storage). The trained
//     Model, the ConvolutionCoster baseline and the WithStats counting
//     view all implement it; plain Costers keep working untouched.
//   - internal/routing capability-detects the ScratchCoster in PBR:
//     label distributions then live in a pooled arena, labels killed by
//     pruning recycle their buffers immediately, and only the winning
//     pivot distribution is cloned out to the heap. The kernel path is
//     bit-identical to the plain path — same routes, probabilities and
//     telemetry — enforced by equivalence tests at every layer.
//
// The result is an order-of-magnitude drop in allocations per query
// (see BenchmarkRoutingPBR with -benchmem), which is what lets one
// engine serve batch traffic at scale.
//
// # The preprocessing layer: ALT landmark potentials
//
// The second per-query cost after label extension is the potentials
// phase: an exact backward Dijkstra over the whole graph before every
// search. At city scale it is noise; at OSM scale (>1M edges) it
// dominates the query. Engine.SetLandmarks(L) (cmd/serve -landmarks)
// moves that work to preprocessing: L landmarks are selected by
// farthest-point traversal over the spatial grid, 2L Dijkstras per
// slice model build landmark distance tables (routing.BuildALT), and
// queries bound remaining cost by the triangle inequality instead of
// running Dijkstra — identical answers (potentials prune, they never
// price; equivalence is bit-exact and tested), ≥5x faster queries at
// the million-edge scale (BenchmarkRoutingPBROSM).
//
// The tables are model-derived state, so they live in the epoch-tagged
// snapshot and follow its lifecycle: every swap path — SwapModel,
// SwapSliceModel (only the affected slice's tables plus the
// min-across-slices tables rebuild), SwapModelSet, LoadModel — rebuilds
// what the incoming models invalidate before publishing, on the swap
// path rather than the query path. Time-expanded queries use tables
// built on the pointwise-min-across-slices metric, which stays
// admissible for every horizon; departure-slice queries use their
// slice's own, tighter tables. Callers with custom preprocessing can
// supply their own RouteOptions.Potentials (the routing.PotentialSource
// contract).
//
// # Concurrency
//
// The engine's whole query surface is read-only and safe for any
// number of goroutines on one shared Engine: the hybrid estimator uses
// the network's pure inference pass, and decision telemetry lives in
// per-request structs (hybrid.QueryStats, surfaced as
// RouteResult.NumConvolved/NumEstimated) plus atomic lifetime totals.
// Earlier versions required serialising Route calls or cloning models
// per goroutine; that caveat is gone.
//
// Engine.RouteBatch answers many queries as one unit: all of them run
// against a single epoch snapshot (a concurrent hot swap never splits
// a batch across model generations) on a bounded worker pool, each
// worker reusing the pooled kernel scratch. The serving layer exposes
// it as POST /route/batch with per-item cache reuse.
//
// The serving model itself lives behind an epoch-tagged atomic
// pointer: Engine.SwapModel (used by internal/ingest after a
// background rebuild, and by LoadModel) publishes a new model
// generation without pausing queries. In-flight queries finish on the
// snapshot they started with, new queries see the new generation, and
// every RouteResult carries the ModelEpoch that answered it so callers
// and caches can tell generations apart.
//
// # Time-of-day slices
//
// Travel-time distributions depend on when you drive: rush hour and
// free flow are different worlds. The engine therefore serves a
// time-sliced cost model — hybrid.ModelSet — that partitions the day
// into K equal slices (configurable via hybrid.Config.Slices; K = 1 is
// the classic time-homogeneous setup and is bit-identical to the
// pre-temporal engine, enforced by an equivalence test). Every layer
// participates:
//
//   - Trajectories carry a departure timestamp (traj.Trajectory.
//     Departure, persisted by the SRT2 codec; legacy SRT1 files load
//     with departure 0), the synthetic world can give each slice its
//     own congestion mode prior (traj.WorldConfig.SlicePriors,
//     traj.PeakedSlicePriors), and observations aggregate per slice
//     over a shared edge grid (traj.SlicedObservations).
//   - One hybrid model is trained per slice on that slice's data
//     (hybrid.TrainSlices) and the set persists as a multi-slice SRHM
//     v2 file — a v1 file loads as a 1-slice set, and a 1-slice set
//     writes byte-identical v1.
//   - A query's RouteOptions.Departure selects the slice exactly once,
//     before the (unchanged, allocation-free) PBR kernel runs; results
//     are stamped with the slice and the slice's epoch. Legacy SRT1
//     trajectory files load with departure 0; concatenated recordings
//     that mix codec generations stream through
//     traj.ReadTrajectoryStream.
//
// # Time-expanded routing
//
// Departure-slice selection alone has a blind spot: a long rush-hour
// trip keeps paying peak costs hours after congestion clears, because
// one slice's model prices the whole trip. RouteOptions.TimeExpanded
// closes it — when a search label is extended along an edge, the cost
// model is re-selected from the slice at departure + the label's
// accumulated mean cost (hybrid.TemporalCoster, implemented by the
// ModelSet façade), so long trips transition from peak to off-peak
// models mid-search. The machinery, layer by layer:
//
//   - internal/hybrid: ModelSet.TimeExpandedCoster returns a
//     per-query hybrid.TemporalScratchCoster — per-extension slice
//     selection layered on the unchanged allocation-free kernel
//     contracts (ExtendElapsed / ExtendElapsedInto mirror Extend /
//     ExtendInto bit for bit at elapsed 0).
//   - internal/routing: labels carry their accumulated mean; dominance
//     frontiers are partitioned by next-extension slice (labels facing
//     different future models never compete); potentials use bounds
//     admissible across every slice reachable within the search
//     horizon; Result.SliceSeq reports the slice sequence of the
//     chosen path. See the internal/routing package doc for the
//     invariants.
//   - Equivalence is proven, not hoped for: TimeExpanded=false — and
//     TimeExpanded=true on a 1-slice engine, or for any trip whose
//     horizon stays inside its departure slice — is bit-identical to
//     the departure-slice path (route, probability, distribution,
//     telemetry), and an accuracy test shows the time-expanded
//     distribution strictly closer to the world's multi-slice path
//     truth (traj.World.PathTruthExpanded) on boundary-crossing trips.
//   - A time-expanded result carries the GLOBAL model epoch rather
//     than one slice's (any reachable slice's model may have shaped
//     it), and Engine.PathDistributionExpanded /
//     TrueDistributionExpanded expose the same semantics for explicit
//     paths.
//
// # Two-level epochs and per-slice caches
//
// Epochs are two-level: ModelEpoch is the global generation counter —
// it bumps on every swap of anything — and SliceEpoch(s) is the global
// epoch value at which slice s last swapped. Engine.SwapSliceModel —
// the unit internal/ingest publishes through when one slice's drift
// monitor fires — advances only that slice's epoch, so an AM-peak
// rebuild leaves the night model, its epoch and its caches untouched;
// SwapModelSet and LoadModel advance every slice at once. Every
// RouteResult is stamped with the epoch that answered it: the slice's
// epoch for departure-slice queries, the global epoch for
// time-expanded ones.
//
// The serving layer (internal/server) leans on exactly that split: it
// keeps one sharded LRU route cache and one pair-sum cache PER SLICE
// (capacity total/K each), each validated against its own slice's
// epoch, so a peak-slice swap invalidates only the peak caches in O(1)
// while every other slice stays warm. Time-expanded answers are never
// cached — they vary continuously with the exact departure and would
// need global-epoch validation — so time_expanded=true requests always
// measure raw search cost. depart= and time_expanded= are accepted on
// /route, /route/anytime and per item on /route/batch; /healthz and
// /stats report per-slice epochs, cache and drift counters.
//
// # Observability
//
// The system is instrumented end to end through internal/obs, a
// dependency-free metrics registry serving the Prometheus text
// exposition on GET /metrics. One registry spans all three layers
// (cmd/serve wires it): the server's per-endpoint request counters and
// latency histograms, the engine's per-query search telemetry —
// expansions, generated labels, the three pruning counters, the
// convolve-vs-estimate split and the arena footprint, folded into
// per-slice histograms via Engine.SetSearchMetrics — and the
// ingestor's drift scores, rebuild durations and swap counters. The
// two-level epochs surface as the model_epoch gauge plus one
// slice_epoch gauge per slice, with swap_total{slice} counting each
// slice's hot swaps, so a dashboard sees exactly which slice swapped
// and when. The instrumentation is allocation-free on the query path:
// counters are single atomic adds on pre-registered series, and
// attaching search metrics adds zero allocations per routed query
// (gated by TestRouteMetricsZeroExtraAllocs and
// BenchmarkMetricsHotPath in CI).
//
// Per-query tracing rides the same path: requests slower than the
// server's slow-query threshold (and an optional 1-in-N sample) emit
// one structured log/slog line carrying the request's X-Request-ID —
// accepted from the client or minted, always echoed on the response —
// with the full query identity and search counters, so a slow response
// observed by a client joins to the server's view of the same request.
// internal/server/doc.go catalogues the metric names, label
// conventions and the trace line schema.
//
// Span-based tracing (obs.Tracer) goes one level deeper: a sampled
// request carries a root span through context.Context, and every layer
// it crosses contributes timed child spans — the server's slice-select,
// cache-lookup and encode phases, the engine's search span (with the
// per-query counters as attributes), and inside it the PBR kernel's
// potentials/seed-path/expand phases (routing.PBRCtx). Background
// rebuilds are always traced as root "rebuild" with build-kb/train/swap
// children. Finished trees land in a bounded lock-free store —
// obs.SpanStore, which retains slow and error traces preferentially —
// and are served as JSON on GET /debug/traces. W3C traceparent headers
// join client and server hops (a sampled inbound header forces
// tracing; the response echoes the trace identity), and the
// route-latency histograms attach the trace ID as an OpenMetrics
// exemplar, so a latency spike on a dashboard links straight to the
// span tree that explains it. The unsampled path is free: StartSpan on
// a span-free context returns a nil span whose every method is a no-op,
// gated at zero allocations per query by BenchmarkSpanUnsampledHotPath
// and bounded under sampling by BenchmarkRoutingPBRTraced in CI.
//
// # Quick start
//
//	cfg := stochroute.DefaultConfig()
//	cfg.Network.Rows, cfg.Network.Cols = 40, 40
//	engine, err := stochroute.BuildEngine(cfg, os.Stderr)
//	if err != nil { ... }
//	src := engine.NearestVertex(57.01, 9.92)
//	dst := engine.NearestVertex(57.03, 9.95)
//	res, err := engine.Route(src, dst, 600 /* seconds */)
//	fmt.Printf("P(arrive within 10 min) = %.2f over %d edges\n",
//	    res.Prob, len(res.Path))
//
// See README.md for the contributor-facing architecture overview and
// command quickstart, the examples/ directory for runnable programs,
// and cmd/experiments for the paper's evaluation tables.
package stochroute
