// Package stochroute is a Go reproduction of "A Hybrid Learning Approach
// to Stochastic Routing" (Pedersen, Yang, Jensen; ICDE 2020).
//
// Road-network edges have uncertain travel times, and the travel times
// of adjacent edges are spatially dependent: convolving per-edge
// histograms — the classical way to compute a path's travel-time
// distribution — systematically invents outcomes that never occur. The
// paper's Hybrid Model pairs a learned distribution-estimation model
// with a binary classifier that decides, at every intersection, whether
// to convolve (independent pair) or estimate (dependent pair). On top of
// the model sits Probabilistic Budget Routing: given a source, a
// destination and a time budget t, find the path that maximises the
// probability of arriving within t, with an anytime variant that returns
// the best known path when a run-time limit expires.
//
// The package is a facade over the internal implementation:
//
//   - internal/hist — histogram travel-time distributions (convolution,
//     shifting, dominance, divergences) plus the allocation-free kernel
//     primitives: scratch-buffer forms of the hot operations
//     (ConvolveInto, CDFShifted, the In-Place mutators) and the
//     per-search Arena that owns the flat float64 storage behind every
//     routing label
//   - internal/graph, internal/netgen, internal/osm — the road-network
//     substrate: CSR graphs, a synthetic city generator, an OSM parser
//   - internal/traj — the traffic world model and trajectory simulation
//     standing in for GPS fleet data, including the time-of-day
//     machinery: departure timestamps (SRT2 codec), per-slice world
//     mode priors and the sliced observation aggregate
//   - internal/ml — from-scratch neural networks and logistic regression
//   - internal/hybrid — the paper's contribution: the hybrid cost model
//   - internal/routing — Dijkstra baselines and Probabilistic Budget
//     Routing with the paper's four prunings and the anytime extension
//   - internal/server — the concurrent routing service: an HTTP/JSON
//     API over a shared engine — single queries and POST /route/batch —
//     with an epoch-validated sharded LRU result cache (run it with
//     cmd/serve, measure it with cmd/loadgen)
//   - internal/ingest — the write path: streaming trajectory ingestion
//     with drift detection and background retraining, published
//     through the engine's epoch-tagged model hot swap (exercise it
//     end to end with cmd/replay against POST /ingest)
//   - internal/exp — the harness that regenerates every table of the
//     paper's evaluation
//
// # The allocation-free cost kernel
//
// A budget-routing query spends nearly all of its time extending label
// distributions: convolve (or estimate) an incoming histogram with the
// next edge, truncate it at the budget horizon, read a few CDFs,
// discard most candidates. Doing that with immutable heap values makes
// the allocator the bottleneck, so the distribution pipeline is built
// as a reusable kernel threaded through every layer:
//
//   - internal/hist provides the scratch-buffer primitives —
//     ConvolveInto(dst, a, b), CDFShifted (pivot pruning's cost
//     shifting without cloning), TruncateAboveInPlace /
//     CapBucketsInPlace / TrimInPlace — and a per-search hist.Arena
//     owning flat []float64 blocks with size-class recycling.
//   - internal/hybrid extends the Coster contract with the OPTIONAL
//     hybrid.ScratchCoster capability: ExtendInto/InitialHistInto write
//     into a per-search hybrid.Scratch (arena + feature vector + MLP
//     activation buffers + predicted-conditional storage). The trained
//     Model, the ConvolutionCoster baseline and the WithStats counting
//     view all implement it; plain Costers keep working untouched.
//   - internal/routing capability-detects the ScratchCoster in PBR:
//     label distributions then live in a pooled arena, labels killed by
//     pruning recycle their buffers immediately, and only the winning
//     pivot distribution is cloned out to the heap. The kernel path is
//     bit-identical to the plain path — same routes, probabilities and
//     telemetry — enforced by equivalence tests at every layer.
//
// The result is an order-of-magnitude drop in allocations per query
// (see BenchmarkRoutingPBR with -benchmem), which is what lets one
// engine serve batch traffic at scale.
//
// # Concurrency
//
// The engine's whole query surface is read-only and safe for any
// number of goroutines on one shared Engine: the hybrid estimator uses
// the network's pure inference pass, and decision telemetry lives in
// per-request structs (hybrid.QueryStats, surfaced as
// RouteResult.NumConvolved/NumEstimated) plus atomic lifetime totals.
// Earlier versions required serialising Route calls or cloning models
// per goroutine; that caveat is gone.
//
// Engine.RouteBatch answers many queries as one unit: all of them run
// against a single epoch snapshot (a concurrent hot swap never splits
// a batch across model generations) on a bounded worker pool, each
// worker reusing the pooled kernel scratch. The serving layer exposes
// it as POST /route/batch with per-item cache reuse.
//
// The serving model itself lives behind an epoch-tagged atomic
// pointer: Engine.SwapModel (used by internal/ingest after a
// background rebuild, and by LoadModel) publishes a new model
// generation without pausing queries. In-flight queries finish on the
// snapshot they started with, new queries see the new generation, and
// every RouteResult carries the ModelEpoch that answered it so callers
// and caches can tell generations apart.
//
// # Time-of-day slices
//
// Travel-time distributions depend on when you drive: rush hour and
// free flow are different worlds. The engine therefore serves a
// time-sliced cost model — hybrid.ModelSet — that partitions the day
// into K equal slices (configurable via hybrid.Config.Slices; K = 1 is
// the classic time-homogeneous setup and is bit-identical to the
// pre-temporal engine, enforced by an equivalence test). Every layer
// participates:
//
//   - Trajectories carry a departure timestamp (traj.Trajectory.
//     Departure, persisted by the SRT2 codec; legacy SRT1 files load
//     with departure 0), the synthetic world can give each slice its
//     own congestion mode prior (traj.WorldConfig.SlicePriors,
//     traj.PeakedSlicePriors), and observations aggregate per slice
//     over a shared edge grid (traj.SlicedObservations).
//   - One hybrid model is trained per slice on that slice's data
//     (hybrid.TrainSlices) and the set persists as a multi-slice SRHM
//     v2 file — a v1 file loads as a 1-slice set, and a 1-slice set
//     writes byte-identical v1.
//   - A query's RouteOptions.Departure selects the slice exactly once,
//     before the (unchanged, allocation-free) PBR kernel runs; results
//     are stamped with the slice and the slice's epoch.
//   - Epochs are two-level: ModelEpoch is the global generation
//     counter, SliceEpoch(s) the generation of one slice's model.
//     Engine.SwapSliceModel — the unit internal/ingest publishes
//     through when one slice's drift monitor fires — advances only
//     that slice's epoch, so an AM-peak rebuild leaves the night
//     model, its epoch and its caches untouched.
//   - The serving layer takes depart= on /route, /route/batch, /sample
//     and /pairsum, keeps one epoch-validated result cache per slice,
//     and reports per-slice epochs and drift counters on /healthz and
//     /stats.
//
// # Quick start
//
//	cfg := stochroute.DefaultConfig()
//	cfg.Network.Rows, cfg.Network.Cols = 40, 40
//	engine, err := stochroute.BuildEngine(cfg, os.Stderr)
//	if err != nil { ... }
//	src := engine.NearestVertex(57.01, 9.92)
//	dst := engine.NearestVertex(57.03, 9.95)
//	res, err := engine.Route(src, dst, 600 /* seconds */)
//	fmt.Printf("P(arrive within 10 min) = %.2f over %d edges\n",
//	    res.Prob, len(res.Path))
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory and experiment index.
package stochroute
