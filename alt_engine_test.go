package stochroute

import (
	"testing"
)

// sameRouteResult asserts two engine answers describe the same route,
// bit for bit: potentials choice (exact vs ALT) must never change what
// a query returns. Telemetry is excluded — ALT bounds are weaker, so
// expansion counts legitimately differ.
func sameRouteResult(t *testing.T, label string, want, got *RouteResult) {
	t.Helper()
	if want.Found != got.Found || want.Complete != got.Complete {
		t.Fatalf("%s: found/complete %v/%v vs %v/%v", label, want.Found, want.Complete, got.Found, got.Complete)
	}
	if want.Prob != got.Prob {
		t.Fatalf("%s: prob %v vs %v (not bit-equal)", label, want.Prob, got.Prob)
	}
	if len(want.Path) != len(got.Path) {
		t.Fatalf("%s: path lengths %d vs %d", label, len(want.Path), len(got.Path))
	}
	for i := range want.Path {
		if want.Path[i] != got.Path[i] {
			t.Fatalf("%s: path[%d] = %d vs %d", label, i, want.Path[i], got.Path[i])
		}
	}
	if (want.Dist == nil) != (got.Dist == nil) {
		t.Fatalf("%s: dist nil mismatch", label)
	}
	if want.Dist != nil {
		if want.Dist.Min != got.Dist.Min || want.Dist.Width != got.Dist.Width || len(want.Dist.P) != len(got.Dist.P) {
			t.Fatalf("%s: dist shape mismatch", label)
		}
		for i := range want.Dist.P {
			if want.Dist.P[i] != got.Dist.P[i] {
				t.Fatalf("%s: dist P[%d] %v vs %v", label, i, want.Dist.P[i], got.Dist.P[i])
			}
		}
	}
	if len(want.SliceSeq) != len(got.SliceSeq) {
		t.Fatalf("%s: slice seq lengths %d vs %d", label, len(want.SliceSeq), len(got.SliceSeq))
	}
	for i := range want.SliceSeq {
		if want.SliceSeq[i] != got.SliceSeq[i] {
			t.Fatalf("%s: sliceSeq[%d] = %d vs %d", label, i, want.SliceSeq[i], got.SliceSeq[i])
		}
	}
}

// TestEngineSetLandmarks walks the full ALT lifecycle on a serving
// engine: enable (results bit-identical to exact potentials, epoch
// bumps), survive a model hot swap (tables rebuilt before publish),
// and disable (back to exact). Classic and time-expanded queries are
// checked at every step, covering both the per-slice and the
// min-across-slices table injection in routeOnSnapshot.
func TestEngineSetLandmarks(t *testing.T) {
	e := testEngine(t)
	if e.Landmarks() != 0 {
		t.Fatalf("fresh engine has %d landmarks, want 0", e.Landmarks())
	}
	if err := e.SetLandmarks(-1); err == nil {
		t.Fatal("negative landmark count accepted")
	}

	qs, err := e.SampleQueries(0.5, 1.5, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		label string
		opts  RouteOptions
	}
	run := func() []*RouteResult {
		var out []*RouteResult
		for _, q := range qs {
			optimistic, err := e.OptimisticTime(q.Source, q.Dest)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []variant{
				{"classic", RouteOptions{Budget: 1.35 * optimistic}},
				{"time-expanded", RouteOptions{Budget: 1.35 * optimistic, Departure: 43150, TimeExpanded: true}},
			} {
				res, err := e.RouteWithOptions(q.Source, q.Dest, v.opts)
				if err != nil {
					t.Fatalf("%s: %v", v.label, err)
				}
				out = append(out, res)
			}
		}
		return out
	}
	compare := func(stage string, want, got []*RouteResult) {
		t.Helper()
		for i := range want {
			sameRouteResult(t, stage, want[i], got[i])
		}
	}

	exact := run()

	preEpoch := e.ModelEpoch()
	if err := e.SetLandmarks(12); err != nil {
		t.Fatal(err)
	}
	if e.Landmarks() != 12 {
		t.Fatalf("Landmarks() = %d, want 12", e.Landmarks())
	}
	if e.ModelEpoch() != preEpoch+1 {
		t.Fatalf("SetLandmarks epoch %d, want %d (caches must revalidate)", e.ModelEpoch(), preEpoch+1)
	}
	compare("alt-enabled", exact, run())

	// A model hot swap must rebuild the tables before publishing; the
	// swapped-in clone shares the serving model's statistics, so answers
	// stay bit-identical and ALT stays on.
	if _, err := e.SwapModel(e.Model().CloneForConcurrentUse(), nil); err != nil {
		t.Fatal(err)
	}
	if e.Landmarks() != 12 {
		t.Fatalf("Landmarks() = %d after swap, want 12", e.Landmarks())
	}
	compare("alt-after-swap", exact, run())

	if err := e.SetLandmarks(0); err != nil {
		t.Fatal(err)
	}
	if e.Landmarks() != 0 {
		t.Fatalf("Landmarks() = %d after disable, want 0", e.Landmarks())
	}
	compare("alt-disabled", exact, run())
}
