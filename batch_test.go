package stochroute

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stochroute/internal/server"
)

// TestEngineRouteBatchMatchesSequential: a batched answer must be
// item-for-item identical to sequential RouteWithOptions calls — same
// path, bit-equal probability, same epoch stamp — including error
// items, which must not disturb their neighbours.
func TestEngineRouteBatchMatchesSequential(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.4, 1.4, 8, 91)
	if err != nil {
		t.Fatal(err)
	}
	var queries []BatchQuery
	for _, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, BatchQuery{
			Source: q.Source,
			Dest:   q.Dest,
			Opts:   RouteOptions{Budget: 1.3 * optimistic},
		})
	}
	// Splice in a failing item: invalid (non-positive) budget.
	bad := len(queries) / 2
	queries = append(queries[:bad+1], queries[bad:]...)
	queries[bad] = BatchQuery{Source: 0, Dest: 1, Opts: RouteOptions{Budget: -5}}

	items := e.RouteBatch(context.Background(), queries, 4)
	if len(items) != len(queries) {
		t.Fatalf("got %d items for %d queries", len(items), len(queries))
	}
	for i, q := range queries {
		it := items[i]
		if i == bad {
			if it.Err == nil || it.Result != nil {
				t.Fatalf("item %d: expected error item, got %+v", i, it)
			}
			if it.Epoch != e.ModelEpoch() {
				t.Errorf("error item %d: epoch %d != serving epoch %d", i, it.Epoch, e.ModelEpoch())
			}
			continue
		}
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		want, err := e.RouteWithOptions(q.Source, q.Dest, q.Opts)
		if err != nil {
			t.Fatal(err)
		}
		got := it.Result
		if got.Prob != want.Prob {
			t.Errorf("item %d: prob %v != sequential %v", i, got.Prob, want.Prob)
		}
		if len(got.Path) != len(want.Path) {
			t.Fatalf("item %d: path length %d != %d", i, len(got.Path), len(want.Path))
		}
		for j := range got.Path {
			if got.Path[j] != want.Path[j] {
				t.Fatalf("item %d: paths diverge at %d", i, j)
			}
		}
		if got.ModelEpoch != e.ModelEpoch() {
			t.Errorf("item %d: epoch %d != serving epoch %d", i, got.ModelEpoch, e.ModelEpoch())
		}
		if got.NumConvolved+got.NumEstimated == 0 {
			t.Errorf("item %d: no per-query decision telemetry", i)
		}
	}
}

// TestRouteBatchHTTPMatchesSequentialRoute drives POST /route/batch
// against the real engine over real HTTP and checks every item equals
// the corresponding sequential GET /route answer — probability
// bit-equal, same path length, same epoch. Caches are disabled so both
// sides genuinely search. Run with -race this also shakes down the
// pooled scratch kernel under the server's concurrency.
func TestRouteBatchHTTPMatchesSequentialRoute(t *testing.T) {
	e := testEngine(t)
	srv := server.New(e, server.Config{RouteCache: -1, PairCache: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qs, err := e.SampleQueries(0.4, 1.2, 6, 93)
	if err != nil {
		t.Fatal(err)
	}
	type item struct {
		src, dst int
		budget   float64
	}
	var items []item
	var parts []string
	for _, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		it := item{src: int(q.Source), dst: int(q.Dest), budget: 1.3 * optimistic}
		items = append(items, it)
		parts = append(parts, fmt.Sprintf(`{"source":%d,"dest":%d,"budget_s":%.6f}`, it.src, it.dst, it.budget))
	}
	resp, err := http.Post(ts.URL+"/route/batch", "application/json",
		strings.NewReader(`{"queries":[`+strings.Join(parts, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var batch struct {
		Results []struct {
			Found bool           `json:"found"`
			Prob  float64        `json:"prob"`
			Path  []int          `json:"path"`
			Epoch uint64         `json:"model_epoch"`
			Extra map[string]any `json:"-"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(items) {
		t.Fatalf("got %d results, want %d", len(batch.Results), len(items))
	}
	for i, it := range items {
		seq, err := http.Get(fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.6f", ts.URL, it.src, it.dst, it.budget))
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			Found bool    `json:"found"`
			Prob  float64 `json:"prob"`
			Path  []int   `json:"path"`
			Epoch uint64  `json:"model_epoch"`
		}
		err = json.NewDecoder(seq.Body).Decode(&sr)
		seq.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		br := batch.Results[i]
		if br.Found != sr.Found || br.Prob != sr.Prob {
			t.Errorf("item %d: found/prob %v/%v != sequential %v/%v", i, br.Found, br.Prob, sr.Found, sr.Prob)
		}
		if len(br.Path) != len(sr.Path) {
			t.Errorf("item %d: path length %d != %d", i, len(br.Path), len(sr.Path))
		}
		if br.Epoch != sr.Epoch {
			t.Errorf("item %d: epoch %d != %d", i, br.Epoch, sr.Epoch)
		}
	}
}

// TestEngineRouteBatchWorkerBounds: degenerate worker counts (zero,
// negative, more workers than queries) must all answer every item.
func TestEngineRouteBatchWorkerBounds(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.4, 1.0, 3, 92)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 0, len(qs))
	for _, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, BatchQuery{Source: q.Source, Dest: q.Dest,
			Opts: RouteOptions{Budget: 1.3 * optimistic}})
	}
	for _, workers := range []int{-1, 0, 1, 64} {
		items := e.RouteBatch(context.Background(), queries, workers)
		for i, it := range items {
			if it.Err != nil || it.Result == nil || !it.Result.Found {
				t.Fatalf("workers=%d item %d: %+v", workers, i, it)
			}
		}
	}
	if items := e.RouteBatch(context.Background(), nil, 4); len(items) != 0 {
		t.Errorf("empty batch returned %d items", len(items))
	}

	// A cancelled context fails every not-yet-started item with the
	// context error — still one item per query, all carrying the epoch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := e.RouteBatch(ctx, queries, 1)
	if len(items) != len(queries) {
		t.Fatalf("cancelled batch returned %d items for %d queries", len(items), len(queries))
	}
	for i, it := range items {
		if it.Err == nil {
			t.Errorf("cancelled item %d has no error", i)
		}
		if it.Epoch != e.ModelEpoch() {
			t.Errorf("cancelled item %d: epoch %d", i, it.Epoch)
		}
	}
}
