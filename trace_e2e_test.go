package stochroute

import (
	"context"
	"testing"

	"stochroute/internal/obs"
)

// TestEngineRouteCtxSpans proves the real engine's span wiring end to
// end: a sampled context flowing through RouteCtx produces a "search"
// span whose children are the PBR kernel's phase spans (potentials,
// expand), with the search counters attached as attributes — the same
// tree the HTTP layer serves on /debug/traces, here asserted against
// the genuine routing kernel rather than a fake.
func TestEngineRouteCtxSpans(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.OptimisticTime(qs[0].Source, qs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(obs.NewSpanStore(16, 0), 1)
	ctx, root := tracer.StartRequest(context.Background(), "/route", "eng-trace", obs.Traceparent{})
	res, err := e.RouteCtx(ctx, qs[0].Source, qs[0].Dest, RouteOptions{Budget: opt * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	tracer.Finish(root)

	traces := tracer.Store().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("stored traces = %d, want 1", len(traces))
	}
	tree := traces[0].Tree()
	if len(tree.Children) != 1 || tree.Children[0].Span.Name() != "search" {
		t.Fatalf("root children = %v, want one search span", tree.Children)
	}
	search := tree.Children[0]
	attrs := map[string]any{}
	for _, a := range search.Span.Attrs() {
		attrs[a.Key] = a.Value()
	}
	if attrs["found"] != res.Found || attrs["expansions"] != int64(res.Expansions) {
		t.Errorf("search attrs %v disagree with result (found=%v expansions=%d)",
			attrs, res.Found, res.Expansions)
	}
	phases := map[string]bool{}
	for _, c := range search.Children {
		phases[c.Span.Name()] = true
	}
	if !phases["potentials"] || !phases["expand"] {
		t.Errorf("search children = %v, want PBR phases potentials and expand", phases)
	}

	// The same query without a sampled context must be allocation-
	// identical to the untraced path: no trace, no spans.
	res2, err := e.RouteWithOptions(qs[0].Source, qs[0].Dest, RouteOptions{Budget: opt * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Prob != res.Prob {
		t.Errorf("traced and untraced answers differ: %v vs %v", res2.Prob, res.Prob)
	}
	if len(tracer.Store().Snapshot()) != 1 {
		t.Error("untraced query must not add a trace")
	}
}
