// Quickstart: build a small city, train the hybrid model, and answer one
// probabilistic budget-routing query through the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"stochroute"
)

func main() {
	log.SetFlags(0)

	// A ~30x30-block synthetic city keeps the demo under a minute.
	cfg := stochroute.DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 30, 30
	cfg.Network.CellMeters = 120
	cfg.Walk.NumTrajectories = 6000
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 800, 200
	cfg.Hybrid.MinPairObs = 12
	cfg.Hybrid.Estimator.Train.Epochs = 40

	engine, err := stochroute.BuildEngine(cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	// Snap two coordinates to the network and query.
	src := engine.NearestVertex(57.005, 9.905)
	dst := engine.NearestVertex(57.028, 9.940)
	optimistic, err := engine.OptimisticTime(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	budget := 1.35 * optimistic // a deadline 35% above the ideal drive

	res, err := engine.Route(src, dst, budget)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no path found")
	}
	fmt.Printf("\nbudget %.0fs: best path has %d edges\n", budget, len(res.Path))
	fmt.Printf("P(arrive on time) = %.3f, expected time = %.0fs\n", res.Prob, res.Dist.Mean())

	// Contrast with the classical mean-cost route.
	basePath, baseMean, err := engine.MeanRoute(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	baseDist, err := engine.PathDistribution(basePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean-cost baseline: P(on time) = %.3f, expected time = %.0fs\n",
		baseDist.ProbWithinBudget(budget), baseMean)
}
