// Anytime: the paper's anytime extension. The same budget query runs
// under shrinking run-time limits; the algorithm returns the pivot path
// (best complete candidate so far) when the limit expires, trading
// quality for latency.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"stochroute"
)

func main() {
	log.SetFlags(0)

	cfg := stochroute.DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 40, 40
	cfg.Network.CellMeters = 120
	cfg.Walk.NumTrajectories = 10000
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 1200, 300
	cfg.Hybrid.MinPairObs = 12
	cfg.Hybrid.Estimator.Train.Epochs = 40

	engine, err := stochroute.BuildEngine(cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	queries, err := engine.SampleQueries(2.0, 4.0, 1, 11)
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	optimistic, err := engine.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		log.Fatal(err)
	}
	budget := 1.35 * optimistic
	fmt.Printf("\nquery: %.1f km straight line, budget %.0fs\n\n", q.DistKm, budget)

	// Wall-clock anytime limits, then the unlimited search.
	limits := []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 0}
	fmt.Printf("%-12s %-10s %-12s %-10s %s\n", "limit", "P(on time)", "expansions", "complete", "runtime")
	for _, limit := range limits {
		res, err := engine.RouteAnytime(q.Source, q.Dest, budget, limit)
		if err != nil {
			log.Fatal(err)
		}
		name := "unlimited"
		if limit > 0 {
			name = limit.String()
		}
		prob := 0.0
		if res.Found {
			prob = res.Prob
		}
		fmt.Printf("%-12s %-10.3f %-12d %-10v %v\n",
			name, prob, res.Expansions, res.Complete, res.Runtime.Round(time.Microsecond))
	}

	// Deterministic expansion budgets (the benchmark mode).
	fmt.Println("\nexpansion-budget mode (machine independent):")
	for _, exp := range []int{100, 500, 2500, 0} {
		res, err := engine.RouteWithOptions(q.Source, q.Dest, stochroute.RouteOptions{
			Budget:        budget,
			MaxExpansions: exp,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "unlimited"
		if exp > 0 {
			name = fmt.Sprintf("%d pops", exp)
		}
		prob := 0.0
		if res.Found {
			prob = res.Prob
		}
		fmt.Printf("%-12s P=%.3f complete=%v\n", name, prob, res.Complete)
	}
}
