// Dependence: the paper's "Convolution vs. Estimation" example. First
// the literal two-edge worked example from the poster, then the same
// comparison on learned pairs from a generated network: for dependent
// intersections the hybrid model's estimate is far closer to ground
// truth (lower KL divergence) than the convolution.
package main

import (
	"fmt"
	"log"

	"stochroute"
)

func main() {
	log.SetFlags(0)

	// Worked example: two trajectories T1 = (10s, 20s), T2 = (15s, 25s)
	// over edges e1, e2.
	h1, err := stochroute.NewHistFromPairs(map[float64]float64{10: 0.5, 15: 0.5}, 5)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := stochroute.NewHistFromPairs(map[float64]float64{20: 0.5, 25: 0.5}, 5)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := stochroute.Convolve(h1, h2)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := stochroute.NewHistFromPairs(map[float64]float64{30: 0.5, 40: 0.5}, 5)
	if err != nil {
		log.Fatal(err)
	}
	kl, err := stochroute.KLDivergence(truth, conv, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worked example (edge travel times perfectly dependent):")
	fmt.Printf("  H1 = %v, H2 = %v\n", h1, h2)
	fmt.Printf("  convolution  H1(x)H2 = %v\n", conv)
	fmt.Printf("  ground truth         = %v\n", truth)
	fmt.Printf("  convolution invents the 35s outcome; KL(truth||conv) = %.3f\n\n", kl)

	// The same comparison with learned distributions.
	fmt.Println("--- on a generated network ---")
	cfg := stochroute.DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 24, 24
	cfg.Walk.NumTrajectories = 5000
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 700, 200
	cfg.Hybrid.MinPairObs = 15
	cfg.Hybrid.Estimator.Train.Epochs = 40

	engine, err := stochroute.BuildEngine(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	rep := engine.Report
	fmt.Printf("held-out pairs: %d (%.0f%% dependent)\n", rep.TestPairs, 100*rep.DependentFrac)
	fmt.Printf("  mean KL to ground truth, dependent pairs:   hybrid %.4f vs convolution %.4f\n",
		rep.MeanKLHybridDep, rep.MeanKLConvDep)
	fmt.Printf("  mean KL to ground truth, independent pairs: hybrid %.4f vs convolution %.4f\n",
		rep.MeanKLHybridInd, rep.MeanKLConvInd)

	// Show one concrete dependent pair.
	shown := 0
	obs := engine.Observations()
	for _, k := range obs.PairsWithSupport(40) {
		res, err := obs.DependenceTest(k, 3, 0.05)
		if err != nil || !res.Dependent(0.05) {
			continue
		}
		hyb, conv, truth, err := engine.PairExample(k.First, k.Second)
		if err != nil || truth == nil {
			continue
		}
		klH, _ := stochroute.KLDivergence(truth, hyb, 1e-6)
		klC, _ := stochroute.KLDivergence(truth, conv, 1e-6)
		if klH >= klC {
			continue // pick a pair where the hybrid visibly wins
		}
		fmt.Printf("\nexample dependent pair (edges %d -> %d, chi-square p = %.4f):\n", k.First, k.Second, res.PValue)
		fmt.Printf("  truth       = %v\n", truth)
		fmt.Printf("  hybrid      = %v   KL = %.4f\n", hyb, klH)
		fmt.Printf("  convolution = %v   KL = %.4f\n", conv, klC)
		shown++
		if shown >= 1 {
			break
		}
	}
}
