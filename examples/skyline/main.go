// Skyline: enumerate the stochastic skyline between two points — the
// set of routes whose travel-time distributions are mutually
// non-dominated. A commuter with an unknown deadline would choose among
// exactly these; probabilistic budget routing picks the right member
// once the deadline is known.
package main

import (
	"fmt"
	"log"
	"os"

	"stochroute"
)

func main() {
	log.SetFlags(0)

	cfg := stochroute.DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 30, 30
	cfg.Network.CellMeters = 120
	cfg.Walk.NumTrajectories = 6000
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 800, 200
	cfg.Hybrid.MinPairObs = 12
	cfg.Hybrid.Estimator.Train.Epochs = 40

	engine, err := stochroute.BuildEngine(cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := engine.SampleQueries(1.5, 3.0, 1, 23)
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	optimistic, err := engine.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		log.Fatal(err)
	}

	routes, err := engine.AlternativeRoutes(q.Source, q.Dest, 2.2*optimistic, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%.1f km query, %d skyline routes within a %.0fs horizon:\n\n",
		q.DistKm, len(routes), 2.2*optimistic)
	for i, r := range routes {
		fmt.Printf("route %d: %2d edges, mean %.0fs, p10 %.0fs, p90 %.0fs\n",
			i+1, len(r.Path), r.Dist.Mean(), r.Dist.Quantile(0.1), r.Dist.Quantile(0.9))
	}

	// Show which member wins at three different deadlines.
	fmt.Println("\ndeadline -> best skyline member:")
	for _, slack := range []float64{1.15, 1.4, 1.9} {
		deadline := slack * optimistic
		best, bestP := -1, -1.0
		for i, r := range routes {
			if p := r.Dist.ProbWithinBudget(deadline); p > bestP {
				best, bestP = i, p
			}
		}
		fmt.Printf("  t = %.0fs: route %d with P(on time) = %.2f\n", deadline, best+1, bestP)
	}
}
