// Airport: the paper's motivating example. An autonomous taxi must reach
// the airport within a 60-minute deadline. Two candidate paths have the
// travel-time distributions from the paper's introduction; mean-cost
// routing picks the riskier one.
package main

import (
	"fmt"
	"log"

	"stochroute"
)

func main() {
	log.SetFlags(0)

	// The paper's table, at the bucket midpoints of [40,50), [50,60),
	// [60,70) minutes.
	p1, err := stochroute.NewHistFromPairs(map[float64]float64{45: 0.3, 55: 0.6, 65: 0.1}, 10)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := stochroute.NewHistFromPairs(map[float64]float64{45: 0.6, 55: 0.2, 65: 0.2}, 10)
	if err != nil {
		log.Fatal(err)
	}

	const deadline = 60.0
	fmt.Println("Travel-time distributions of two paths to the airport (minutes):")
	fmt.Printf("  P1 = %v   mean %.0f   P(<=%.0f) = %.1f\n", p1, p1.Mean(), deadline, p1.ProbWithinBudget(deadline))
	fmt.Printf("  P2 = %v   mean %.0f   P(<=%.0f) = %.1f\n", p2, p2.Mean(), deadline, p2.ProbWithinBudget(deadline))
	fmt.Println()

	if p2.Mean() < p1.Mean() {
		fmt.Println("Average travel times prefer P2 (51 vs 53 minutes)...")
	}
	if p1.ProbWithinBudget(deadline) > p2.ProbWithinBudget(deadline) {
		fmt.Println("...but P1 makes the 60-minute deadline with probability 0.9 vs 0.8:")
		fmt.Println("a taxi routed by averages has a higher risk of being late.")
	}

	// The same effect, end to end, on a synthetic city: compare the
	// budget-routed path with the mean-cost path at a tight deadline.
	fmt.Println("\n--- same effect on a generated network ---")
	cfg := stochroute.DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 24, 24
	cfg.Walk.NumTrajectories = 4000
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 600, 150
	cfg.Hybrid.MinPairObs = 12
	cfg.Hybrid.Estimator.Train.Epochs = 40

	engine, err := stochroute.BuildEngine(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := engine.SampleQueries(1.0, 2.5, 12, 7)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range queries {
		optimistic, err := engine.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			continue
		}
		deadline := 1.35 * optimistic
		res, err := engine.Route(q.Source, q.Dest, deadline)
		if err != nil || !res.Found {
			continue
		}
		basePath, _, err := engine.MeanRoute(q.Source, q.Dest)
		if err != nil {
			continue
		}
		baseTrue, err := engine.TrueDistribution(basePath)
		if err != nil {
			continue
		}
		pbrTrue, err := engine.TrueDistribution(res.Path)
		if err != nil {
			continue
		}
		pb, pp := baseTrue.ProbWithinBudget(deadline), pbrTrue.ProbWithinBudget(deadline)
		if pp > pb+0.01 {
			fmt.Printf("query %.1f km, deadline %.0fs: mean-cost path P(on time)=%.2f, budget-routed path P=%.2f (+%.0fpp)\n",
				q.DistKm, deadline, pb, pp, 100*(pp-pb))
		}
	}
}
