package stochroute

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"stochroute/internal/geo"
	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/netgen"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

// Engine is the assembled system: a road network, the trained Hybrid
// Model over it, and the query algorithms. The whole query surface —
// Route, RouteAnytime, RouteWithOptions, AlternativeRoutes,
// PathDistribution, PairSum and friends — is read-only and safe for
// any number of concurrent goroutines on one shared Engine; decision
// telemetry is kept per-request and in atomic lifetime totals.
// Mutating operations (LoadModel) must not race with in-flight
// queries.
type Engine struct {
	graph *graph.Graph
	index *graph.GridIndex
	world *traj.World // nil when built from external observations
	obs   *traj.ObservationStore
	kb    *hybrid.KnowledgeBase
	model *hybrid.Model

	// Report is the KL-divergence evaluation captured during training.
	Report *EvalReport
}

// BuildEngine generates a synthetic network, simulates trajectories,
// and trains the hybrid model — the full pipeline of the paper on the
// synthetic substrate. Progress lines go to logW (io.Discard to
// silence; nil defaults to io.Discard).
func BuildEngine(cfg Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	logf := func(format string, args ...any) { fmt.Fprintf(logW, format+"\n", args...) }

	g, err := netgen.Generate(cfg.Network)
	if err != nil {
		return nil, fmt.Errorf("stochroute: network generation: %w", err)
	}
	logf("stochroute: network: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	world, err := traj.NewWorld(g, cfg.World)
	if err != nil {
		return nil, fmt.Errorf("stochroute: world model: %w", err)
	}
	trajs, err := traj.GenerateTrajectories(world, cfg.Walk)
	if err != nil {
		return nil, fmt.Errorf("stochroute: trajectory simulation: %w", err)
	}
	logf("stochroute: simulated %d trajectories", len(trajs))

	eng, err := NewEngineFromObservations(g, trajs, cfg.Hybrid, logW)
	if err != nil {
		return nil, err
	}
	eng.world = world
	return eng, nil
}

// NewEngineFromObservations builds an engine over an existing graph and
// trajectory set (e.g. a parsed OSM network with map-matched GPS
// trajectories). Ground truth for the training evaluation is then the
// held-out empirical pair distributions, as in the paper.
func NewEngineFromObservations(g *Graph, trajs []Trajectory, cfg hybrid.Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	obs := traj.NewObservationStore(g, cfg.Width)
	obs.Collect(trajs)
	kb, err := hybrid.BuildKnowledgeBase(g, obs, cfg.Width, cfg.MinPairObs)
	if err != nil {
		return nil, fmt.Errorf("stochroute: knowledge base: %w", err)
	}
	fmt.Fprintf(logW, "stochroute: training hybrid model on %d pairs with data\n", kb.NumPairs())
	model, report, err := hybrid.Train(kb, obs, trajs, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("stochroute: training: %w", err)
	}
	fmt.Fprintf(logW, "stochroute: KL(hybrid)=%.4f KL(conv)=%.4f on %d held-out pairs\n",
		report.MeanKLHybrid, report.MeanKLConv, report.TestPairs)
	return &Engine{
		graph:  g,
		index:  graph.NewGridIndex(g, 500),
		obs:    obs,
		kb:     kb,
		model:  model,
		Report: report,
	}, nil
}

// NewEngineWithModel assembles an engine over an existing graph,
// trajectory set and an already-trained model — the serving path:
// the knowledge base is rebuilt from the observations and the model is
// attached to it, with no training and no evaluation (Report is nil).
// The model's grid width must match width.
func NewEngineWithModel(g *Graph, trajs []Trajectory, width float64, minPairObs int, model *Model) (*Engine, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	if model == nil {
		return nil, errors.New("stochroute: nil model")
	}
	obs := traj.NewObservationStore(g, width)
	obs.Collect(trajs)
	kb, err := hybrid.BuildKnowledgeBase(g, obs, width, minPairObs)
	if err != nil {
		return nil, fmt.Errorf("stochroute: knowledge base: %w", err)
	}
	if err := model.AttachKB(kb); err != nil {
		return nil, err
	}
	return &Engine{
		graph: g,
		index: graph.NewGridIndex(g, 500),
		obs:   obs,
		kb:    kb,
		model: model,
	}, nil
}

// Graph returns the engine's road network.
func (e *Engine) Graph() *Graph { return e.graph }

// Model returns the trained hybrid model.
func (e *Engine) Model() *Model { return e.model }

// KnowledgeBase returns the per-edge/per-pair statistics.
func (e *Engine) KnowledgeBase() *KnowledgeBase { return e.kb }

// Observations returns the trajectory-derived training data.
func (e *Engine) Observations() *ObservationStore { return e.obs }

// World returns the synthetic ground-truth world, or nil for engines
// built from external observations.
func (e *Engine) World() *World { return e.world }

// NearestVertex snaps a WGS84 coordinate to the closest vertex.
func (e *Engine) NearestVertex(lat, lon float64) VertexID {
	return e.index.Nearest(geo.Point{Lat: lat, Lon: lon})
}

// Route answers a Probabilistic Budget Routing query with the full
// (non-anytime) search: the returned path maximises the model's
// probability of arriving within budget seconds.
func (e *Engine) Route(source, dest VertexID, budget float64) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget})
}

// RouteAnytime is Route with a wall-clock limit: when the limit expires
// the current pivot path is returned (Result.Complete reports whether
// the search finished).
func (e *Engine) RouteAnytime(source, dest VertexID, budget float64, limit time.Duration) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget, MaxDuration: limit})
}

// RouteWithOptions exposes every knob of the budget-routing search. The
// result carries per-request cost-model telemetry (NumConvolved /
// NumEstimated) collected race-free even when many queries run at once.
func (e *Engine) RouteWithOptions(source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	var qs hybrid.QueryStats
	res, err := routing.PBR(e.graph, e.model.WithStats(&qs), source, dest, opts)
	if err != nil {
		return nil, err
	}
	res.NumConvolved = qs.Convolved
	res.NumEstimated = qs.Estimated
	return res, nil
}

// DecisionCounts returns the model's lifetime convolve/estimate totals
// across every query answered so far.
func (e *Engine) DecisionCounts() (convolved, estimated uint64) {
	return e.model.DecisionCounts()
}

// PairSum returns the model's distribution for traversing the adjacent
// edge pair (first, second) — the hot unit of the paper's evaluation,
// served (and cached) by internal/server.
func (e *Engine) PairSum(first, second EdgeID) (*Hist, error) {
	return e.model.PairSumEstimate(first, second)
}

// MeanRoute returns the classical mean-cost shortest path (the paper's
// pitfall baseline) and its expected travel time in seconds.
func (e *Engine) MeanRoute(source, dest VertexID) ([]EdgeID, float64, error) {
	return routing.MeanCostPath(e.graph, e.kb, source, dest)
}

// OptimisticTime returns the fastest-possible travel time in seconds
// between the endpoints under the model's admissible lower bounds.
func (e *Engine) OptimisticTime(source, dest VertexID) (float64, error) {
	_, t, err := routing.Dijkstra(e.graph, e.kb.MinEdgeTime, source, dest)
	return t, err
}

// PathDistribution computes the hybrid travel-time distribution of an
// explicit edge path via the iterative virtual-edge procedure.
func (e *Engine) PathDistribution(edges []EdgeID) (*Hist, error) {
	return hybrid.PathCost(e.model, edges)
}

// ConvolutionDistribution computes the same path's distribution under
// the independence assumption — the baseline the paper improves on.
func (e *Engine) ConvolutionDistribution(edges []EdgeID) (*Hist, error) {
	return hybrid.PathCost(&hybrid.ConvolutionCoster{KB: e.kb, MaxBuckets: e.model.MaxBuckets}, edges)
}

// TrueDistribution returns the oracle distribution of a path under the
// synthetic world, or an error for engines without a world.
func (e *Engine) TrueDistribution(edges []EdgeID) (*Hist, error) {
	if e.world == nil {
		return nil, errors.New("stochroute: engine has no ground-truth world")
	}
	return e.world.PathTruth(edges)
}

// SampleQueries draws n routing queries whose straight-line distance
// falls within [loKm, hiKm).
func (e *Engine) SampleQueries(loKm, hiKm float64, n int, seed uint64) ([]Query, error) {
	wg := netgen.NewWorkloadGen(e.graph, seed)
	return wg.SampleCategory(netgen.DistanceCategory{LoKm: loKm, HiKm: hiKm}, n)
}

// SaveGraph writes the network to path in the SRG1 binary format.
func (e *Engine) SaveGraph(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := e.graph.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraph reads a network written by SaveGraph (or cmd/gennet).
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// SaveModel writes the trained hybrid model to path in the SRHM binary
// format.
func (e *Engine) SaveModel(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hybrid.WriteModel(f, e.model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel replaces the engine's hybrid model with one written by
// SaveModel, attached to the engine's knowledge base. A loaded model
// with MaxBuckets == 0 (unlimited support) inherits the previous
// model's cap; an engine is normally constructed with a model, but if
// this one was not, the loaded value stands as-is. LoadModel mutates
// the engine and must not race with in-flight queries.
func (e *Engine) LoadModel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := hybrid.ReadModel(f)
	if err != nil {
		return err
	}
	if err := m.AttachKB(e.kb); err != nil {
		return err
	}
	if m.MaxBuckets == 0 && e.model != nil {
		m.MaxBuckets = e.model.MaxBuckets
	}
	e.model = m
	return nil
}

// AlternativeRoute is one member of the stochastic skyline.
type AlternativeRoute = routing.ParetoRoute

// AlternativeRoutes enumerates mutually non-dominated routes between the
// endpoints within the given time horizon: the route set a user with an
// unknown deadline would choose from. The budget-routing answer for any
// budget within the horizon is (up to search caps) a member of this set.
func (e *Engine) AlternativeRoutes(source, dest VertexID, horizon float64, maxRoutes int) ([]AlternativeRoute, error) {
	return routing.ParetoRoutes(e.graph, e.model, source, dest, routing.ParetoOptions{
		Horizon:   horizon,
		MaxRoutes: maxRoutes,
	})
}

// RankedAlternatives generates the k best mean-cost candidate paths
// (Yen's algorithm) and ranks them by the hybrid model's on-time
// probability at the given budget — the k-shortest-paths baseline.
func (e *Engine) RankedAlternatives(source, dest VertexID, budget float64, k int) ([]routing.ScoredPath, error) {
	return routing.KSPBudgetRouting(e.graph, e.model, func(id EdgeID) float64 {
		return e.kb.Edge(id).Mean
	}, source, dest, budget, k)
}

// PairExample returns the hybrid, convolution and (when a world is
// present) ground-truth distributions for one adjacent edge pair — the
// unit the paper's KL evaluation compares.
func (e *Engine) PairExample(first, second EdgeID) (hybridDist, convDist, truth *Hist, err error) {
	hybridDist, err = e.model.PairSumEstimate(first, second)
	if err != nil {
		return nil, nil, nil, err
	}
	convDist = hist.MustConvolve(e.kb.Edge(first).Marginal, e.kb.Edge(second).Marginal)
	if e.world != nil {
		truth = e.world.PairJointSum(first, second, e.graph.Edge(second).From)
	}
	return hybridDist, convDist, truth, nil
}
