package stochroute

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stochroute/internal/geo"
	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/netgen"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

// modelSnapshot is one immutable serving generation: the model, the
// knowledge base it is attached to, and the observations both were
// derived from, tagged with a monotonically increasing epoch. Queries
// load the snapshot once and use it consistently throughout, so a
// concurrent swap can never hand half a query the old model and half
// the new one.
type modelSnapshot struct {
	model     *hybrid.Model
	kb        *hybrid.KnowledgeBase
	obs       *traj.ObservationStore
	epoch     uint64
	swappedAt time.Time

	// baseConvolved/baseEstimated carry the decision totals of every
	// retired generation, folded in at swap time, so DecisionCounts is
	// one snapshot read — the fold and the publish are a single atomic
	// pointer store, never transiently double-counted.
	baseConvolved uint64
	baseEstimated uint64
}

// Engine is the assembled system: a road network, the trained Hybrid
// Model over it, and the query algorithms. The whole query surface —
// Route, RouteAnytime, RouteWithOptions, AlternativeRoutes,
// PathDistribution, PairSum and friends — is read-only and safe for
// any number of concurrent goroutines on one shared Engine; decision
// telemetry is kept per-request and in atomic lifetime totals.
//
// The serving model lives behind an epoch-tagged atomic pointer:
// SwapModel (and LoadModel, which is built on it) atomically publishes
// a new model generation while queries are in flight. In-flight
// queries finish on the snapshot they started with; new queries see
// the new epoch. Every RouteResult is stamped with the epoch that
// answered it so callers (and the serving layer's caches) can
// correlate answers with model generations.
type Engine struct {
	graph *graph.Graph
	index *graph.GridIndex
	world *traj.World // nil when built from external observations

	current atomic.Pointer[modelSnapshot]
	swapMu  sync.Mutex // serialises swaps; queries never take it

	// Report is the KL-divergence evaluation captured during training.
	Report *EvalReport
}

// BuildEngine generates a synthetic network, simulates trajectories,
// and trains the hybrid model — the full pipeline of the paper on the
// synthetic substrate. Progress lines go to logW (io.Discard to
// silence; nil defaults to io.Discard).
func BuildEngine(cfg Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	logf := func(format string, args ...any) { fmt.Fprintf(logW, format+"\n", args...) }

	g, err := netgen.Generate(cfg.Network)
	if err != nil {
		return nil, fmt.Errorf("stochroute: network generation: %w", err)
	}
	logf("stochroute: network: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	world, err := traj.NewWorld(g, cfg.World)
	if err != nil {
		return nil, fmt.Errorf("stochroute: world model: %w", err)
	}
	trajs, err := traj.GenerateTrajectories(world, cfg.Walk)
	if err != nil {
		return nil, fmt.Errorf("stochroute: trajectory simulation: %w", err)
	}
	logf("stochroute: simulated %d trajectories", len(trajs))

	eng, err := NewEngineFromObservations(g, trajs, cfg.Hybrid, logW)
	if err != nil {
		return nil, err
	}
	eng.world = world
	return eng, nil
}

// NewEngineFromObservations builds an engine over an existing graph and
// trajectory set (e.g. a parsed OSM network with map-matched GPS
// trajectories). Ground truth for the training evaluation is then the
// held-out empirical pair distributions, as in the paper.
func NewEngineFromObservations(g *Graph, trajs []Trajectory, cfg hybrid.Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	obs := traj.NewObservationStore(g, cfg.Width)
	obs.Collect(trajs)
	kb, err := hybrid.BuildKnowledgeBase(g, obs, cfg.Width, cfg.MinPairObs)
	if err != nil {
		return nil, fmt.Errorf("stochroute: knowledge base: %w", err)
	}
	fmt.Fprintf(logW, "stochroute: training hybrid model on %d pairs with data\n", kb.NumPairs())
	model, report, err := hybrid.Train(kb, obs, trajs, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("stochroute: training: %w", err)
	}
	fmt.Fprintf(logW, "stochroute: KL(hybrid)=%.4f KL(conv)=%.4f on %d held-out pairs\n",
		report.MeanKLHybrid, report.MeanKLConv, report.TestPairs)
	eng := &Engine{
		graph:  g,
		index:  graph.NewGridIndex(g, 500),
		Report: report,
	}
	eng.current.Store(&modelSnapshot{model: model, kb: kb, obs: obs, epoch: 1, swappedAt: time.Now()})
	return eng, nil
}

// NewEngineWithModel assembles an engine over an existing graph,
// trajectory set and an already-trained model — the serving path:
// the knowledge base is rebuilt from the observations and the model is
// attached to it, with no training and no evaluation (Report is nil).
// The model's grid width must match width.
func NewEngineWithModel(g *Graph, trajs []Trajectory, width float64, minPairObs int, model *Model) (*Engine, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	if model == nil {
		return nil, errors.New("stochroute: nil model")
	}
	obs := traj.NewObservationStore(g, width)
	obs.Collect(trajs)
	kb, err := hybrid.BuildKnowledgeBase(g, obs, width, minPairObs)
	if err != nil {
		return nil, fmt.Errorf("stochroute: knowledge base: %w", err)
	}
	if err := model.AttachKB(kb); err != nil {
		return nil, err
	}
	eng := &Engine{
		graph: g,
		index: graph.NewGridIndex(g, 500),
	}
	eng.current.Store(&modelSnapshot{model: model, kb: kb, obs: obs, epoch: 1, swappedAt: time.Now()})
	return eng, nil
}

// Graph returns the engine's road network.
func (e *Engine) Graph() *Graph { return e.graph }

// Model returns the currently serving hybrid model.
func (e *Engine) Model() *Model { return e.current.Load().model }

// KnowledgeBase returns the per-edge/per-pair statistics of the
// currently serving model generation.
func (e *Engine) KnowledgeBase() *KnowledgeBase { return e.current.Load().kb }

// Observations returns the observation aggregate the currently serving
// model generation was derived from.
func (e *Engine) Observations() *ObservationStore { return e.current.Load().obs }

// ModelEpoch returns the monotonically increasing generation number of
// the currently serving model. The initial model is epoch 1; every
// SwapModel/LoadModel bumps it.
func (e *Engine) ModelEpoch() uint64 { return e.current.Load().epoch }

// LastSwap returns the serving epoch and the time it was published.
func (e *Engine) LastSwap() (epoch uint64, at time.Time) {
	cur := e.current.Load()
	return cur.epoch, cur.swappedAt
}

// SwapModel atomically publishes model (with its attached knowledge
// base) as the next serving generation and returns the new epoch.
// obs optionally records the observation aggregate the model was
// rebuilt from (nil keeps the previous aggregate). In-flight queries
// finish on the snapshot they started with; queries that start after
// SwapModel returns see the new model and carry the new epoch in
// their RouteResult. Safe to call while any number of queries run.
func (e *Engine) SwapModel(model *Model, obs *ObservationStore) (uint64, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.swapLocked(model, obs)
}

// swapLocked publishes model as the next generation. Callers hold
// e.swapMu.
func (e *Engine) swapLocked(model *Model, obs *ObservationStore) (uint64, error) {
	if model == nil {
		return 0, errors.New("stochroute: SwapModel with nil model")
	}
	kb := model.KB
	if kb == nil {
		return 0, errors.New("stochroute: SwapModel with no knowledge base attached")
	}
	if g := kb.Graph(); g == nil || g.NumVertices() != e.graph.NumVertices() || g.NumEdges() != e.graph.NumEdges() {
		return 0, errors.New("stochroute: SwapModel knowledge base built over a different graph")
	}
	prev := e.current.Load()
	if obs == nil {
		obs = prev.obs
	}
	next := &modelSnapshot{
		model:         model,
		kb:            kb,
		obs:           obs,
		epoch:         prev.epoch + 1,
		swappedAt:     time.Now(),
		baseConvolved: prev.baseConvolved,
		baseEstimated: prev.baseEstimated,
	}
	// Fold the retiring model's lifetime decision counters into the
	// new snapshot's base so DecisionCounts keeps counting across
	// swaps. (Queries still in flight on the old model may add a few
	// more decisions after this read; those are lost from the total.)
	if prev.model != model {
		conv, est := prev.model.DecisionCounts()
		next.baseConvolved += conv
		next.baseEstimated += est
		model.ResetCounters()
	}
	e.current.Store(next)
	return next.epoch, nil
}

// World returns the synthetic ground-truth world, or nil for engines
// built from external observations.
func (e *Engine) World() *World { return e.world }

// NearestVertex snaps a WGS84 coordinate to the closest vertex.
func (e *Engine) NearestVertex(lat, lon float64) VertexID {
	return e.index.Nearest(geo.Point{Lat: lat, Lon: lon})
}

// Route answers a Probabilistic Budget Routing query with the full
// (non-anytime) search: the returned path maximises the model's
// probability of arriving within budget seconds.
func (e *Engine) Route(source, dest VertexID, budget float64) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget})
}

// RouteAnytime is Route with a wall-clock limit: when the limit expires
// the current pivot path is returned (Result.Complete reports whether
// the search finished).
func (e *Engine) RouteAnytime(source, dest VertexID, budget float64, limit time.Duration) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget, MaxDuration: limit})
}

// RouteWithOptions exposes every knob of the budget-routing search. The
// result carries per-request cost-model telemetry (NumConvolved /
// NumEstimated) collected race-free even when many queries run at once,
// plus the ModelEpoch of the generation that answered it.
func (e *Engine) RouteWithOptions(source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	return e.routeOnSnapshot(e.current.Load(), source, dest, opts)
}

// routeOnSnapshot answers one budget-routing query against an explicit
// model snapshot: the single place where per-request decision telemetry
// and the epoch stamp are wired onto a result, shared by the single and
// batched query paths.
func (e *Engine) routeOnSnapshot(cur *modelSnapshot, source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	var qs hybrid.QueryStats
	res, err := routing.PBR(e.graph, cur.model.WithStats(&qs), source, dest, opts)
	if err != nil {
		return nil, err
	}
	res.NumConvolved = qs.Convolved
	res.NumEstimated = qs.Estimated
	res.ModelEpoch = cur.epoch
	return res, nil
}

// RouteBatch answers many budget-routing queries as one unit: every
// query runs against the same model snapshot (one epoch, loaded once —
// a hot swap mid-batch never splits the batch across generations) on a
// bounded worker pool. workers <= 0 uses GOMAXPROCS. Item i of the
// answer corresponds to queries[i]; per-query failures (invalid
// budget, unreachable destination) land in that item's Err without
// affecting the rest of the batch, and every item carries the
// snapshot's epoch.
//
// Cancelling ctx stops the batch between queries: items not yet
// started fail with the context error, while searches already running
// finish (bound them with BatchQuery.Opts.Deadline — the serving layer
// gives a whole batch one shared deadline so an abandoned batch can
// never pin the pool past its request timeout).
//
// Each worker's searches reuse the pooled allocation-free cost kernel,
// so a batch of n queries costs far less than n cold Route calls.
func (e *Engine) RouteBatch(ctx context.Context, queries []routing.BatchQuery, workers int) []routing.BatchItem {
	out := make([]routing.BatchItem, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	cur := e.current.Load()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = routing.BatchItem{Err: err, Epoch: cur.epoch}
					continue
				}
				q := queries[i]
				res, err := e.routeOnSnapshot(cur, q.Source, q.Dest, q.Opts)
				out[i] = routing.BatchItem{Result: res, Err: err, Epoch: cur.epoch}
			}
		}()
	}
	wg.Wait()
	return out
}

// DecisionCounts returns the engine's lifetime convolve/estimate totals
// across every query answered so far, including by model generations
// since retired by SwapModel.
func (e *Engine) DecisionCounts() (convolved, estimated uint64) {
	cur := e.current.Load()
	conv, est := cur.model.DecisionCounts()
	return cur.baseConvolved + conv, cur.baseEstimated + est
}

// PairSum returns the model's distribution for traversing the adjacent
// edge pair (first, second) — the hot unit of the paper's evaluation,
// served (and cached) by internal/server.
func (e *Engine) PairSum(first, second EdgeID) (*Hist, error) {
	return e.current.Load().model.PairSumEstimate(first, second)
}

// MeanRoute returns the classical mean-cost shortest path (the paper's
// pitfall baseline) and its expected travel time in seconds.
func (e *Engine) MeanRoute(source, dest VertexID) ([]EdgeID, float64, error) {
	return routing.MeanCostPath(e.graph, e.current.Load().kb, source, dest)
}

// OptimisticTime returns the fastest-possible travel time in seconds
// between the endpoints under the model's admissible lower bounds.
func (e *Engine) OptimisticTime(source, dest VertexID) (float64, error) {
	_, t, err := routing.Dijkstra(e.graph, e.current.Load().kb.MinEdgeTime, source, dest)
	return t, err
}

// PathDistribution computes the hybrid travel-time distribution of an
// explicit edge path via the iterative virtual-edge procedure.
func (e *Engine) PathDistribution(edges []EdgeID) (*Hist, error) {
	return hybrid.PathCost(e.current.Load().model, edges)
}

// ConvolutionDistribution computes the same path's distribution under
// the independence assumption — the baseline the paper improves on.
func (e *Engine) ConvolutionDistribution(edges []EdgeID) (*Hist, error) {
	cur := e.current.Load()
	return hybrid.PathCost(&hybrid.ConvolutionCoster{KB: cur.kb, MaxBuckets: cur.model.MaxBuckets}, edges)
}

// TrueDistribution returns the oracle distribution of a path under the
// synthetic world, or an error for engines without a world.
func (e *Engine) TrueDistribution(edges []EdgeID) (*Hist, error) {
	if e.world == nil {
		return nil, errors.New("stochroute: engine has no ground-truth world")
	}
	return e.world.PathTruth(edges)
}

// SampleQueries draws n routing queries whose straight-line distance
// falls within [loKm, hiKm).
func (e *Engine) SampleQueries(loKm, hiKm float64, n int, seed uint64) ([]Query, error) {
	wg := netgen.NewWorkloadGen(e.graph, seed)
	return wg.SampleCategory(netgen.DistanceCategory{LoKm: loKm, HiKm: hiKm}, n)
}

// SaveGraph writes the network to path in the SRG1 binary format.
func (e *Engine) SaveGraph(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := e.graph.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraph reads a network written by SaveGraph (or cmd/gennet).
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// SaveModel writes the currently serving hybrid model to path in the
// SRHM binary format.
func (e *Engine) SaveModel(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hybrid.WriteModel(f, e.current.Load().model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel hot-swaps in a model written by SaveModel, attached to the
// currently serving knowledge base, bumping the model epoch. A loaded
// model with MaxBuckets == 0 (unlimited support) inherits the previous
// model's cap. Safe to call while queries are in flight: this is
// SwapModel with the model read from disk.
func (e *Engine) LoadModel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := hybrid.ReadModel(f)
	if err != nil {
		return err
	}
	// Attach under the swap lock so a concurrent SwapModel (e.g. an
	// ingest rebuild finishing) cannot slip between reading the current
	// knowledge base and publishing: the loaded model always binds to
	// the knowledge base it will actually serve with.
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.current.Load()
	if err := m.AttachKB(cur.kb); err != nil {
		return err
	}
	if m.MaxBuckets == 0 {
		m.MaxBuckets = cur.model.MaxBuckets
	}
	_, err = e.swapLocked(m, nil)
	return err
}

// AlternativeRoute is one member of the stochastic skyline.
type AlternativeRoute = routing.ParetoRoute

// AlternativeRoutes enumerates mutually non-dominated routes between the
// endpoints within the given time horizon: the route set a user with an
// unknown deadline would choose from. The budget-routing answer for any
// budget within the horizon is (up to search caps) a member of this set.
func (e *Engine) AlternativeRoutes(source, dest VertexID, horizon float64, maxRoutes int) ([]AlternativeRoute, error) {
	return routing.ParetoRoutes(e.graph, e.current.Load().model, source, dest, routing.ParetoOptions{
		Horizon:   horizon,
		MaxRoutes: maxRoutes,
	})
}

// RankedAlternatives generates the k best mean-cost candidate paths
// (Yen's algorithm) and ranks them by the hybrid model's on-time
// probability at the given budget — the k-shortest-paths baseline.
func (e *Engine) RankedAlternatives(source, dest VertexID, budget float64, k int) ([]routing.ScoredPath, error) {
	cur := e.current.Load()
	return routing.KSPBudgetRouting(e.graph, cur.model, func(id EdgeID) float64 {
		return cur.kb.Edge(id).Mean
	}, source, dest, budget, k)
}

// PairExample returns the hybrid, convolution and (when a world is
// present) ground-truth distributions for one adjacent edge pair — the
// unit the paper's KL evaluation compares.
func (e *Engine) PairExample(first, second EdgeID) (hybridDist, convDist, truth *Hist, err error) {
	cur := e.current.Load()
	hybridDist, err = cur.model.PairSumEstimate(first, second)
	if err != nil {
		return nil, nil, nil, err
	}
	convDist = hist.MustConvolve(cur.kb.Edge(first).Marginal, cur.kb.Edge(second).Marginal)
	if e.world != nil {
		truth = e.world.PairJointSum(first, second, e.graph.Edge(second).From)
	}
	return hybridDist, convDist, truth, nil
}
