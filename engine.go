package stochroute

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stochroute/internal/geo"
	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/netgen"
	"stochroute/internal/obs"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

// modelSnapshot is one immutable serving generation: the time-sliced
// model set (each slice's model with its attached knowledge base), the
// sliced observation aggregate they were derived from, and the epoch
// bookkeeping. Queries load the snapshot once and use it consistently
// throughout, so a concurrent swap can never hand half a query the old
// model and half the new one.
//
// Epochs are two-level: epoch is the global generation counter — it
// bumps on *every* swap, of any slice, and is what result caches key
// their validity on conservatively. sliceEpochs[s] is the global epoch
// value at which slice s last swapped: a per-slice rebuild advances
// only its own slice's entry, so /stats can show that the AM-peak model
// is three generations newer than the night model. For a 1-slice
// engine sliceEpochs[0] == epoch always, which is exactly the
// pre-temporal behaviour.
type modelSnapshot struct {
	set         *hybrid.ModelSet
	obs         *traj.SlicedObservations
	epoch       uint64
	sliceEpochs []uint64
	swappedAt   time.Time

	// alt holds the generation's ALT landmark preprocessing (nil when
	// disabled, the default). Tables are derived from the snapshot's
	// models, so they live and die with the snapshot: every swap path
	// rebuilds the affected tables *before* publishing — preprocessing
	// cost lands on the swap, never on the query path — and in-flight
	// queries keep using the tables that match the models they started
	// on.
	alt *altTables

	// baseConvolved/baseEstimated carry the decision totals of every
	// retired generation, folded in at swap time, so DecisionCounts is
	// one snapshot read — the fold and the publish are a single atomic
	// pointer store, never transiently double-counted.
	baseConvolved uint64
	baseEstimated uint64
}

// altTables is one generation's ALT landmark preprocessing (see
// routing.BuildALT): per-slice distance tables built on each slice
// model's optimistic edge times, serving departure-slice queries, and
// one table built on the min-across-slices metric, serving
// time-expanded queries (whose potentials must stay admissible for
// every slice the search can consult). For a 1-slice engine min aliases
// slices[0] — one build, not two.
type altTables struct {
	landmarks []graph.VertexID
	slices    []*routing.ALT
	min       *routing.ALT
}

// model0 and kb0 are the slice-0 view: the whole model for 1-slice
// engines, and the canonical "default time" model otherwise (used by
// the public accessors that predate time slicing).
func (s *modelSnapshot) model0() *hybrid.Model      { return s.set.At(0) }
func (s *modelSnapshot) kb0() *hybrid.KnowledgeBase { return s.set.At(0).KB }
func newSliceEpochs(k int, epoch uint64) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = epoch
	}
	return out
}

// Engine is the assembled system: a road network, the trained Hybrid
// Model over it, and the query algorithms. The whole query surface —
// Route, RouteAnytime, RouteWithOptions, AlternativeRoutes,
// PathDistribution, PairSum and friends — is read-only and safe for
// any number of concurrent goroutines on one shared Engine; decision
// telemetry is kept per-request and in atomic lifetime totals.
//
// The serving model lives behind an epoch-tagged atomic pointer:
// SwapModel (and LoadModel, which is built on it) atomically publishes
// a new model generation while queries are in flight. In-flight
// queries finish on the snapshot they started with; new queries see
// the new epoch. Every RouteResult is stamped with the epoch that
// answered it so callers (and the serving layer's caches) can
// correlate answers with model generations.
type Engine struct {
	graph *graph.Graph
	index *graph.GridIndex
	world *traj.World // nil when built from external observations

	current atomic.Pointer[modelSnapshot]
	swapMu  sync.Mutex // serialises swaps; queries never take it

	// searchMetrics, when set, receives one SearchSample per routing
	// query — the per-slice search telemetry behind /metrics. Held
	// behind an atomic pointer so attaching or detaching the recorder
	// never races the query path.
	searchMetrics atomic.Pointer[obs.SearchMetrics]

	// Report is the KL-divergence evaluation captured during training
	// (slice 0's report for a time-sliced engine).
	Report *EvalReport
	// Reports holds one evaluation per time-of-day slice (length
	// NumSlices; nil for engines assembled from pre-trained models).
	Reports []*EvalReport
}

// BuildEngine generates a synthetic network, simulates trajectories,
// and trains the hybrid model — the full pipeline of the paper on the
// synthetic substrate. Progress lines go to logW (io.Discard to
// silence; nil defaults to io.Discard).
func BuildEngine(cfg Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	logf := func(format string, args ...any) { fmt.Fprintf(logW, format+"\n", args...) }

	g, err := netgen.Generate(cfg.Network)
	if err != nil {
		return nil, fmt.Errorf("stochroute: network generation: %w", err)
	}
	logf("stochroute: network: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	world, err := traj.NewWorld(g, cfg.World)
	if err != nil {
		return nil, fmt.Errorf("stochroute: world model: %w", err)
	}
	trajs, err := traj.GenerateTrajectories(world, cfg.Walk)
	if err != nil {
		return nil, fmt.Errorf("stochroute: trajectory simulation: %w", err)
	}
	logf("stochroute: simulated %d trajectories", len(trajs))

	eng, err := NewEngineFromObservations(g, trajs, cfg.Hybrid, logW)
	if err != nil {
		return nil, err
	}
	eng.world = world
	return eng, nil
}

// NewEngineFromObservations builds an engine over an existing graph and
// trajectory set (e.g. a parsed OSM network with map-matched GPS
// trajectories). Ground truth for the training evaluation is then the
// held-out empirical pair distributions, as in the paper.
func NewEngineFromObservations(g *Graph, trajs []Trajectory, cfg hybrid.Config, logW io.Writer) (*Engine, error) {
	if logW == nil {
		logW = io.Discard
	}
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	k := traj.NumSlices(cfg.Slices)
	obs := traj.NewSlicedObservations(g, cfg.Width, k)
	obs.Collect(trajs)
	bySlice := traj.SplitBySlice(trajs, k)
	if k > 1 {
		fmt.Fprintf(logW, "stochroute: training %d time-of-day slice models\n", k)
	}
	set, reports, err := hybrid.TrainSlices(g, obs, bySlice, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("stochroute: training: %w", err)
	}
	for s, report := range reports {
		if k > 1 {
			fmt.Fprintf(logW, "stochroute: slice %d: %d trajectories, %d pairs, KL(hybrid)=%.4f KL(conv)=%.4f on %d held-out pairs\n",
				s, len(bySlice[s]), set.At(s).KB.NumPairs(), report.MeanKLHybrid, report.MeanKLConv, report.TestPairs)
		} else {
			fmt.Fprintf(logW, "stochroute: KL(hybrid)=%.4f KL(conv)=%.4f on %d held-out pairs\n",
				report.MeanKLHybrid, report.MeanKLConv, report.TestPairs)
		}
	}
	eng := &Engine{
		graph:   g,
		index:   graph.NewGridIndex(g, 500),
		Report:  reports[0],
		Reports: reports,
	}
	eng.current.Store(&modelSnapshot{
		set: set, obs: obs, epoch: 1,
		sliceEpochs: newSliceEpochs(k, 1), swappedAt: time.Now(),
	})
	return eng, nil
}

// NewEngineWithModel assembles an engine over an existing graph,
// trajectory set and an already-trained model — the serving path:
// the knowledge base is rebuilt from the observations and the model is
// attached to it, with no training and no evaluation (Report is nil).
// The model's grid width must match width.
func NewEngineWithModel(g *Graph, trajs []Trajectory, width float64, minPairObs int, model *Model) (*Engine, error) {
	if model == nil {
		return nil, errors.New("stochroute: nil model")
	}
	return NewEngineWithModelSet(g, trajs, width, minPairObs, hybrid.SingleModelSet(model))
}

// NewEngineWithModelSet is NewEngineWithModel for a time-sliced model
// set (for example one read back with hybrid.ReadModelSet): the
// trajectories are bucketed by departure slice, one knowledge base is
// rebuilt per slice, and each slice's model is attached to its own —
// with no training and no evaluation.
func NewEngineWithModelSet(g *Graph, trajs []Trajectory, width float64, minPairObs int, set *hybrid.ModelSet) (*Engine, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("stochroute: nil or empty graph")
	}
	if set == nil || set.K() == 0 {
		return nil, errors.New("stochroute: nil or empty model set")
	}
	k := set.K()
	obs := traj.NewSlicedObservations(g, width, k)
	obs.Collect(trajs)
	for s := 0; s < k; s++ {
		kb, err := hybrid.BuildKnowledgeBase(g, obs.Slice(s), width, minPairObs)
		if err != nil {
			return nil, fmt.Errorf("stochroute: slice %d knowledge base: %w", s, err)
		}
		if err := set.At(s).AttachKB(kb); err != nil {
			return nil, fmt.Errorf("stochroute: slice %d: %w", s, err)
		}
	}
	eng := &Engine{
		graph: g,
		index: graph.NewGridIndex(g, 500),
	}
	eng.current.Store(&modelSnapshot{
		set: set, obs: obs, epoch: 1,
		sliceEpochs: newSliceEpochs(k, 1), swappedAt: time.Now(),
	})
	return eng, nil
}

// Graph returns the engine's road network.
func (e *Engine) Graph() *Graph { return e.graph }

// Model returns the currently serving hybrid model (slice 0's model
// for a time-sliced engine — the whole model when NumSlices is 1).
func (e *Engine) Model() *Model { return e.current.Load().model0() }

// ModelSet returns the currently serving time-sliced model set.
func (e *Engine) ModelSet() *hybrid.ModelSet { return e.current.Load().set }

// SliceModel returns the currently serving model of one time-of-day
// slice.
func (e *Engine) SliceModel(slice int) *Model { return e.current.Load().set.At(slice) }

// KnowledgeBase returns the per-edge/per-pair statistics of the
// currently serving model generation (slice 0's for a time-sliced
// engine).
func (e *Engine) KnowledgeBase() *KnowledgeBase { return e.current.Load().kb0() }

// SliceKnowledgeBase returns the currently serving knowledge base of
// one time-of-day slice.
func (e *Engine) SliceKnowledgeBase(slice int) *KnowledgeBase {
	return e.current.Load().set.At(slice).KB
}

// Observations returns the observation aggregate the currently serving
// model generation was derived from (slice 0's store for a time-sliced
// engine; see SlicedObservations for the whole aggregate).
func (e *Engine) Observations() *ObservationStore { return e.current.Load().obs.Slice(0) }

// SlicedObservations returns the whole per-slice observation aggregate
// of the currently serving generation.
func (e *Engine) SlicedObservations() *traj.SlicedObservations { return e.current.Load().obs }

// NumSlices returns the number of time-of-day slices the engine's cost
// model is partitioned into (1 = time-homogeneous).
func (e *Engine) NumSlices() int { return e.current.Load().set.K() }

// SliceOf maps a departure timestamp (seconds since local midnight,
// wrapped) to the time-of-day slice that would serve it.
func (e *Engine) SliceOf(depart float64) int { return e.current.Load().set.SliceOf(depart) }

// ModelEpoch returns the monotonically increasing global generation
// number of the serving model set. The initial set is epoch 1; every
// swap — whole-set or single-slice — bumps it.
func (e *Engine) ModelEpoch() uint64 { return e.current.Load().epoch }

// SliceEpoch returns the generation of one slice's serving model: the
// global epoch value at which that slice last swapped. For a 1-slice
// engine SliceEpoch(0) == ModelEpoch().
func (e *Engine) SliceEpoch(slice int) uint64 {
	cur := e.current.Load()
	if slice < 0 || slice >= len(cur.sliceEpochs) {
		return cur.epoch
	}
	return cur.sliceEpochs[slice]
}

// SliceEpochs returns a copy of every slice's serving generation,
// indexed by slice.
func (e *Engine) SliceEpochs() []uint64 {
	cur := e.current.Load()
	return append([]uint64(nil), cur.sliceEpochs...)
}

// LastSwap returns the serving global epoch and the time it was
// published.
func (e *Engine) LastSwap() (epoch uint64, at time.Time) {
	cur := e.current.Load()
	return cur.epoch, cur.swappedAt
}

// SwapModel atomically publishes model (with its attached knowledge
// base) as the next serving generation of *slice 0* and returns the
// new global epoch — for a 1-slice engine this replaces the whole
// serving model, exactly the pre-temporal contract. obs optionally
// records the observation aggregate the model was rebuilt from (nil
// keeps the previous aggregate). In-flight queries finish on the
// snapshot they started with; queries that start after SwapModel
// returns see the new model and carry the new epoch in their
// RouteResult. Safe to call while any number of queries run.
func (e *Engine) SwapModel(model *Model, obs *ObservationStore) (uint64, error) {
	return e.SwapSliceModel(0, model, obs)
}

// SwapSliceModel atomically publishes model (with its attached
// knowledge base) as the next serving generation of one time-of-day
// slice, leaving every other slice's model — and epoch — untouched.
// This is the hot-swap unit of per-slice online rebuilds: an AM-peak
// drift rebuild replaces only the AM-peak model while the night slice
// keeps serving its generation. Returns the new global epoch (which is
// also the swapped slice's new SliceEpoch). obs optionally records the
// slice's rebuilt observation store (nil keeps the previous one).
func (e *Engine) SwapSliceModel(slice int, model *Model, obs *ObservationStore) (uint64, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.swapSliceLocked(slice, model, obs)
}

// swapSliceLocked publishes model as slice's next generation. Callers
// hold e.swapMu.
func (e *Engine) swapSliceLocked(slice int, model *Model, obs *ObservationStore) (uint64, error) {
	if model == nil {
		return 0, errors.New("stochroute: SwapModel with nil model")
	}
	kb := model.KB
	if kb == nil {
		return 0, errors.New("stochroute: SwapModel with no knowledge base attached")
	}
	if g := kb.Graph(); g == nil || g.NumVertices() != e.graph.NumVertices() || g.NumEdges() != e.graph.NumEdges() {
		return 0, errors.New("stochroute: SwapModel knowledge base built over a different graph")
	}
	prev := e.current.Load()
	if slice < 0 || slice >= prev.set.K() {
		return 0, fmt.Errorf("stochroute: SwapSliceModel slice %d outside [0, %d)", slice, prev.set.K())
	}
	set, err := prev.set.WithSlice(slice, model)
	if err != nil {
		return 0, err
	}
	nextObs := prev.obs
	if obs != nil {
		// Copy-on-write at the wrapper level only: published
		// generations are immutable, so the untouched slices' stores
		// are shared with the previous snapshot and just the swapped
		// slice's store is replaced — O(K), never O(samples).
		cp := traj.NewSlicedObservations(e.graph, prev.obs.Width(), prev.obs.K())
		for i := 0; i < prev.obs.K(); i++ {
			cp.ReplaceSlice(i, prev.obs.Slice(i))
		}
		cp.ReplaceSlice(slice, obs)
		nextObs = cp
	}
	next := &modelSnapshot{
		set:           set,
		obs:           nextObs,
		epoch:         prev.epoch + 1,
		sliceEpochs:   append([]uint64(nil), prev.sliceEpochs...),
		swappedAt:     time.Now(),
		baseConvolved: prev.baseConvolved,
		baseEstimated: prev.baseEstimated,
	}
	next.sliceEpochs[slice] = next.epoch
	// With ALT enabled, rebuild only the swapped slice's tables (plus
	// the min-metric table, which depends on every slice) against the
	// incoming model — before the publish below, so no query ever sees
	// new models with stale potentials. Untouched slices keep their
	// tables.
	if prev.alt != nil {
		alt, err := e.rebuildAltSlice(prev.alt, set, slice)
		if err != nil {
			return 0, fmt.Errorf("stochroute: ALT rebuild for slice %d: %w", slice, err)
		}
		next.alt = alt
	}
	// Fold the retiring model's lifetime decision counters into the
	// new snapshot's base so DecisionCounts keeps counting across
	// swaps. (Queries still in flight on the old model may add a few
	// more decisions after this read; those are lost from the total.)
	if retiring := prev.set.At(slice); retiring != model {
		conv, est := retiring.DecisionCounts()
		next.baseConvolved += conv
		next.baseEstimated += est
		model.ResetCounters()
	}
	e.current.Store(next)
	return next.epoch, nil
}

// SwapModelSet atomically publishes a whole new model set (every
// slice's model with its knowledge base attached), bumping the global
// epoch and every slice's epoch to it. The set's slice count must
// match the serving set's. obs optionally replaces the observation
// aggregate (nil keeps the previous one).
func (e *Engine) SwapModelSet(set *hybrid.ModelSet, obs *traj.SlicedObservations) (uint64, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.swapSetLocked(set, obs)
}

// swapSetLocked publishes a whole set as the next generation, shared
// by SwapModelSet and LoadModel. Callers hold e.swapMu.
func (e *Engine) swapSetLocked(set *hybrid.ModelSet, obs *traj.SlicedObservations) (uint64, error) {
	prev := e.current.Load()
	if set == nil || set.K() == 0 {
		return 0, errors.New("stochroute: SwapModelSet with empty set")
	}
	if set.K() != prev.set.K() {
		return 0, fmt.Errorf("stochroute: SwapModelSet with %d slices, serving %d", set.K(), prev.set.K())
	}
	for s := 0; s < set.K(); s++ {
		kb := set.At(s).KB
		if kb == nil {
			return 0, fmt.Errorf("stochroute: SwapModelSet slice %d has no knowledge base attached", s)
		}
		if g := kb.Graph(); g == nil || g.NumVertices() != e.graph.NumVertices() || g.NumEdges() != e.graph.NumEdges() {
			return 0, fmt.Errorf("stochroute: SwapModelSet slice %d knowledge base built over a different graph", s)
		}
	}
	if obs == nil {
		obs = prev.obs
	}
	next := &modelSnapshot{
		set:           set,
		obs:           obs,
		epoch:         prev.epoch + 1,
		sliceEpochs:   newSliceEpochs(set.K(), prev.epoch+1),
		swappedAt:     time.Now(),
		baseConvolved: prev.baseConvolved,
		baseEstimated: prev.baseEstimated,
	}
	for s := 0; s < prev.set.K(); s++ {
		if retiring := prev.set.At(s); retiring != set.At(s) {
			conv, est := retiring.DecisionCounts()
			next.baseConvolved += conv
			next.baseEstimated += est
			set.At(s).ResetCounters()
		}
	}
	// A whole-set swap invalidates every slice's tables: rebuild all of
	// them (same landmarks — selection depends only on the graph) before
	// publishing.
	if prev.alt != nil {
		alt, err := e.buildAltSet(set, prev.alt.landmarks)
		if err != nil {
			return 0, fmt.Errorf("stochroute: ALT rebuild: %w", err)
		}
		next.alt = alt
	}
	e.current.Store(next)
	return next.epoch, nil
}

// SetLandmarks enables ALT landmark potentials for every subsequent
// query: count landmarks are selected by farthest-point traversal over
// the spatial grid's cell representatives, 2·count Dijkstras per slice
// model (plus the min-across-slices tables on a multi-slice engine)
// build the distance tables, and the result is published as a new
// serving generation. From then on every swap path rebuilds the
// affected tables before publishing, keeping potentials admissible
// against whatever models are serving. count 0 disables ALT and returns
// queries to exact per-query backward-Dijkstra potentials.
//
// Preprocessing runs under the swap lock — queries in flight keep
// serving the previous generation and are never blocked. The epoch
// bumps like any other swap, so result caches keyed on it revalidate.
func (e *Engine) SetLandmarks(count int) error {
	if count < 0 {
		return fmt.Errorf("stochroute: SetLandmarks with negative count %d", count)
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	prev := e.current.Load()
	var alt *altTables
	if count > 0 {
		lms := routing.SelectLandmarks(e.graph, e.index.CellRepresentatives(), count)
		if len(lms) == 0 {
			return errors.New("stochroute: SetLandmarks found no landmark candidates")
		}
		var err error
		alt, err = e.buildAltSet(prev.set, lms)
		if err != nil {
			return err
		}
	}
	next := &modelSnapshot{
		set:           prev.set,
		obs:           prev.obs,
		epoch:         prev.epoch + 1,
		sliceEpochs:   newSliceEpochs(prev.set.K(), prev.epoch+1),
		swappedAt:     time.Now(),
		alt:           alt,
		baseConvolved: prev.baseConvolved,
		baseEstimated: prev.baseEstimated,
	}
	e.current.Store(next)
	return nil
}

// Landmarks reports the ALT landmark count of the serving generation
// (0 when ALT is disabled).
func (e *Engine) Landmarks() int {
	if at := e.current.Load().alt; at != nil {
		return len(at.landmarks)
	}
	return 0
}

// buildAltSet builds the full per-slice + min-metric table set for a
// model set, reusing an existing landmark selection.
func (e *Engine) buildAltSet(set *hybrid.ModelSet, lms []graph.VertexID) (*altTables, error) {
	at := &altTables{landmarks: lms, slices: make([]*routing.ALT, set.K())}
	for s := 0; s < set.K(); s++ {
		t, err := routing.BuildALT(e.graph, set.At(s).MinEdgeTime, lms)
		if err != nil {
			return nil, fmt.Errorf("stochroute: ALT tables for slice %d: %w", s, err)
		}
		at.slices[s] = t
	}
	if set.K() == 1 {
		at.min = at.slices[0]
	} else {
		t, err := routing.BuildALT(e.graph, set.MinEdgeTimeAcrossSlices, lms)
		if err != nil {
			return nil, fmt.Errorf("stochroute: min-metric ALT tables: %w", err)
		}
		at.min = t
	}
	return at, nil
}

// rebuildAltSlice is the per-slice-swap rebuild: only the swapped
// slice's tables and the min-metric tables (which depend on every
// slice) are rebuilt; the other slices share the previous generation's
// tables.
func (e *Engine) rebuildAltSlice(prev *altTables, set *hybrid.ModelSet, slice int) (*altTables, error) {
	at := &altTables{
		landmarks: prev.landmarks,
		slices:    append([]*routing.ALT(nil), prev.slices...),
	}
	t, err := routing.BuildALT(e.graph, set.At(slice).MinEdgeTime, prev.landmarks)
	if err != nil {
		return nil, err
	}
	at.slices[slice] = t
	if set.K() == 1 {
		at.min = at.slices[0]
	} else {
		mt, err := routing.BuildALT(e.graph, set.MinEdgeTimeAcrossSlices, prev.landmarks)
		if err != nil {
			return nil, err
		}
		at.min = mt
	}
	return at, nil
}

// World returns the synthetic ground-truth world, or nil for engines
// built from external observations.
func (e *Engine) World() *World { return e.world }

// NearestVertex snaps a WGS84 coordinate to the closest vertex.
func (e *Engine) NearestVertex(lat, lon float64) VertexID {
	return e.index.Nearest(geo.Point{Lat: lat, Lon: lon})
}

// Route answers a Probabilistic Budget Routing query with the full
// (non-anytime) search: the returned path maximises the model's
// probability of arriving within budget seconds.
func (e *Engine) Route(source, dest VertexID, budget float64) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget})
}

// RouteAnytime is Route with a wall-clock limit: when the limit expires
// the current pivot path is returned (Result.Complete reports whether
// the search finished).
func (e *Engine) RouteAnytime(source, dest VertexID, budget float64, limit time.Duration) (*RouteResult, error) {
	return e.RouteWithOptions(source, dest, RouteOptions{Budget: budget, MaxDuration: limit})
}

// RouteWithOptions exposes every knob of the budget-routing search. The
// result carries per-request cost-model telemetry (NumConvolved /
// NumEstimated) collected race-free even when many queries run at once,
// plus the ModelEpoch of the generation that answered it.
func (e *Engine) RouteWithOptions(source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	return e.routeOnSnapshot(context.Background(), e.current.Load(), source, dest, opts)
}

// RouteCtx is RouteWithOptions with trace-context propagation: when ctx
// carries a sampled span (the serving layer's root span), the query
// emits a "search" child span annotated with the slice, epoch and
// search counters, and the PBR kernel adds its phase spans beneath it.
// With an unsampled context it is byte-for-byte RouteWithOptions —
// the span API collapses to a zero-allocation no-op.
func (e *Engine) RouteCtx(ctx context.Context, source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	return e.routeOnSnapshot(ctx, e.current.Load(), source, dest, opts)
}

// routeOnSnapshot answers one budget-routing query against an explicit
// model snapshot: the single place where slice selection happens
// (once, from Options.Departure, before the unchanged PBR kernel runs
// — or per extension when Options.TimeExpanded is set) and where
// per-request decision telemetry and the slice/epoch stamps are wired
// onto a result, shared by the single and batched query paths.
func (e *Engine) routeOnSnapshot(ctx context.Context, cur *modelSnapshot, source, dest VertexID, opts RouteOptions) (*RouteResult, error) {
	sctx, sp := obs.StartSpan(ctx, "search")
	slice := cur.set.SliceOf(opts.Departure)
	var qs hybrid.QueryStats
	var coster hybrid.Coster
	if opts.TimeExpanded {
		// The temporal coster re-selects the slice model per extension;
		// on a 1-slice set (or a trip that never leaves its departure
		// slice) it is bit-identical to the departure-slice coster.
		coster = cur.set.TimeExpandedCoster(opts.Departure, &qs)
	} else {
		coster = cur.set.At(slice).WithStats(&qs)
	}
	// ALT injection: a departure-slice query prunes with its slice's
	// tables, a time-expanded query with the min-across-slices tables
	// (admissible for every slice the search can consult). Callers that
	// pass their own PotentialSource keep it.
	if opts.Potentials == nil && cur.alt != nil {
		if opts.TimeExpanded {
			opts.Potentials = cur.alt.min
		} else {
			opts.Potentials = cur.alt.slices[slice]
		}
	}
	res, err := routing.PBRCtx(sctx, e.graph, coster, source, dest, opts)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	res.NumConvolved = qs.Convolved
	res.NumEstimated = qs.Estimated
	res.ModelEpoch = cur.epochFor(slice, opts)
	res.Slice = slice
	if sp != nil {
		sp.SetInt("slice", int64(slice))
		sp.SetInt("epoch", int64(res.ModelEpoch))
		sp.SetBool("time_expanded", opts.TimeExpanded)
		sp.SetInt("expansions", int64(res.Expansions))
		sp.SetInt("generated_labels", int64(res.GeneratedLabels))
		sp.SetInt("convolved", int64(qs.Convolved))
		sp.SetInt("estimated", int64(qs.Estimated))
		sp.SetInt("arena_bytes", res.ArenaBytes)
		sp.SetBool("found", res.Found)
		sp.SetFloat("prob", res.Prob)
		sp.End()
	}
	if m := e.searchMetrics.Load(); m != nil {
		m.Observe(obs.SearchSample{
			Slice:           slice,
			TimeExpanded:    opts.TimeExpanded,
			Expansions:      res.Expansions,
			GeneratedLabels: res.GeneratedLabels,
			PrunedPotential: res.PrunedPotential,
			PrunedPivot:     res.PrunedPivot,
			PrunedDominance: res.PrunedDominance,
			Convolved:       qs.Convolved,
			Estimated:       qs.Estimated,
			ArenaBytes:      res.ArenaBytes,
		})
	}
	return res, nil
}

// SetSearchMetrics attaches (or, with nil, detaches) the per-slice
// search-telemetry recorder: from then on every query answered by this
// engine — single, batched, or time-expanded — records its expansion,
// pruning, decision and arena counters into the recorder's histograms.
// Recording is a fixed set of atomic operations per query, adding zero
// allocations to the route path. Safe to call while serving.
func (e *Engine) SetSearchMetrics(m *obs.SearchMetrics) { e.searchMetrics.Store(m) }

// epochFor is the generation stamped on a query's result: the serving
// slice's epoch normally, but the GLOBAL epoch for a time-expanded
// query — such a search may consult any slice within its horizon, so
// only the global counter conservatively identifies every model that
// could have shaped the answer. For a 1-slice engine the two are
// always equal.
func (s *modelSnapshot) epochFor(slice int, opts RouteOptions) uint64 {
	if opts.TimeExpanded {
		return s.epoch
	}
	return s.sliceEpochs[slice]
}

// RouteBatch answers many budget-routing queries as one unit: every
// query runs against the same model snapshot (one epoch, loaded once —
// a hot swap mid-batch never splits the batch across generations) on a
// bounded worker pool. workers <= 0 uses GOMAXPROCS. Item i of the
// answer corresponds to queries[i]; per-query failures (invalid
// budget, unreachable destination) land in that item's Err without
// affecting the rest of the batch, and every item carries the
// snapshot's epoch.
//
// Cancelling ctx stops the batch between queries: items not yet
// started fail with the context error, while searches already running
// finish (bound them with BatchQuery.Opts.Deadline — the serving layer
// gives a whole batch one shared deadline so an abandoned batch can
// never pin the pool past its request timeout).
//
// Each worker's searches reuse the pooled allocation-free cost kernel,
// so a batch of n queries costs far less than n cold Route calls.
func (e *Engine) RouteBatch(ctx context.Context, queries []routing.BatchQuery, workers int) []routing.BatchItem {
	out := make([]routing.BatchItem, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	cur := e.current.Load()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				epoch := cur.epochFor(cur.set.SliceOf(q.Opts.Departure), q.Opts)
				if err := ctx.Err(); err != nil {
					out[i] = routing.BatchItem{Err: err, Epoch: epoch}
					continue
				}
				// Each item gets its own child span under the batch's
				// request scope, so one slow item is visible inside the
				// batch's trace instead of vanishing into the aggregate.
				t0 := time.Now()
				ictx, isp := obs.StartSpan(ctx, "batch-item")
				isp.SetInt("index", int64(i))
				isp.SetInt("source", int64(q.Source))
				isp.SetInt("dest", int64(q.Dest))
				res, err := e.routeOnSnapshot(ictx, cur, q.Source, q.Dest, q.Opts)
				isp.SetError(err)
				isp.End()
				out[i] = routing.BatchItem{Result: res, Err: err, Epoch: epoch, Elapsed: time.Since(t0)}
			}
		}()
	}
	wg.Wait()
	return out
}

// DecisionCounts returns the engine's lifetime convolve/estimate totals
// across every query answered so far, including by model generations
// since retired by SwapModel.
func (e *Engine) DecisionCounts() (convolved, estimated uint64) {
	cur := e.current.Load()
	conv, est := cur.set.DecisionCounts()
	return cur.baseConvolved + conv, cur.baseEstimated + est
}

// PairSum returns the model's distribution for traversing the adjacent
// edge pair (first, second) — the hot unit of the paper's evaluation,
// served (and cached) by internal/server. Slice 0's model answers; use
// PairSumAt for an explicit time-of-day slice.
func (e *Engine) PairSum(first, second EdgeID) (*Hist, error) {
	return e.current.Load().model0().PairSumEstimate(first, second)
}

// PairSumAt is PairSum under one time-of-day slice's serving model.
func (e *Engine) PairSumAt(slice int, first, second EdgeID) (*Hist, error) {
	return e.current.Load().set.At(slice).PairSumEstimate(first, second)
}

// MeanRoute returns the classical mean-cost shortest path (the paper's
// pitfall baseline) and its expected travel time in seconds.
func (e *Engine) MeanRoute(source, dest VertexID) ([]EdgeID, float64, error) {
	return routing.MeanCostPath(e.graph, e.current.Load().kb0(), source, dest)
}

// OptimisticTime returns the fastest-possible travel time in seconds
// between the endpoints under the model's admissible lower bounds.
func (e *Engine) OptimisticTime(source, dest VertexID) (float64, error) {
	_, t, err := routing.Dijkstra(e.graph, e.current.Load().kb0().MinEdgeTime, source, dest)
	return t, err
}

// PathDistribution computes the hybrid travel-time distribution of an
// explicit edge path via the iterative virtual-edge procedure (slice
// 0's model).
func (e *Engine) PathDistribution(edges []EdgeID) (*Hist, error) {
	return hybrid.PathCost(e.current.Load().model0(), edges)
}

// PathDistributionAt is PathDistribution under the serving model of the
// slice a departure timestamp falls in.
func (e *Engine) PathDistributionAt(depart float64, edges []EdgeID) (*Hist, error) {
	cur := e.current.Load()
	return hybrid.PathCost(cur.set.At(cur.set.SliceOf(depart)), edges)
}

// PathDistributionExpanded is PathDistribution under time-expanded
// slice selection: each edge of the path is costed by the serving
// model of the slice the trip's accumulated mean cost has reached —
// how a RouteOptions.TimeExpanded search would cost the same path. It
// also returns the per-edge slice sequence (slices[i] costed
// edges[i]). For a 1-slice engine it is identical to PathDistribution.
func (e *Engine) PathDistributionExpanded(depart float64, edges []EdgeID) (*Hist, []int, error) {
	return hybrid.PathCostElapsed(e.current.Load().set.TimeExpandedCoster(depart, nil), edges)
}

// ConvolutionDistribution computes the same path's distribution under
// the independence assumption — the baseline the paper improves on.
func (e *Engine) ConvolutionDistribution(edges []EdgeID) (*Hist, error) {
	cur := e.current.Load()
	return hybrid.PathCost(&hybrid.ConvolutionCoster{KB: cur.kb0(), MaxBuckets: cur.model0().MaxBuckets}, edges)
}

// TrueDistribution returns the oracle distribution of a path under the
// synthetic world, or an error for engines without a world.
func (e *Engine) TrueDistribution(edges []EdgeID) (*Hist, error) {
	if e.world == nil {
		return nil, errors.New("stochroute: engine has no ground-truth world")
	}
	return e.world.PathTruth(edges)
}

// TrueDistributionExpanded returns the oracle distribution of a path
// whose trip crosses time-of-day slice boundaries: the world's
// time-expanded path truth for a departure at depart seconds since
// midnight (see traj.World.PathTruthExpanded), plus the per-edge slice
// sequence the oracle traversed. Errors for engines without a world.
func (e *Engine) TrueDistributionExpanded(depart float64, edges []EdgeID) (*Hist, []int, error) {
	if e.world == nil {
		return nil, nil, errors.New("stochroute: engine has no ground-truth world")
	}
	return e.world.PathTruthExpanded(depart, edges)
}

// SampleQueries draws n routing queries whose straight-line distance
// falls within [loKm, hiKm).
func (e *Engine) SampleQueries(loKm, hiKm float64, n int, seed uint64) ([]Query, error) {
	wg := netgen.NewWorkloadGen(e.graph, seed)
	return wg.SampleCategory(netgen.DistanceCategory{LoKm: loKm, HiKm: hiKm}, n)
}

// SaveGraph writes the network to path in the SRG1 binary format.
func (e *Engine) SaveGraph(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := e.graph.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraph reads a network written by SaveGraph (or cmd/gennet).
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// SaveModel writes the currently serving model set to path — the SRHM
// v1 binary format for a 1-slice engine (unchanged from the classic
// artifact), SRH2 for a time-sliced one.
func (e *Engine) SaveModel(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hybrid.WriteModelSet(f, e.current.Load().set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel hot-swaps in a model (set) written by SaveModel, attaching
// each slice's model to that slice's currently serving knowledge base
// and bumping the model epoch. The file's slice count must match the
// engine's (a v1 file is a 1-slice set). A loaded model with
// MaxBuckets == 0 (unlimited support) inherits the previous model's
// cap. Safe to call while queries are in flight.
func (e *Engine) LoadModel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	set, err := hybrid.ReadModelSet(f)
	if err != nil {
		return err
	}
	// Attach under the swap lock so a concurrent swap (e.g. an ingest
	// rebuild finishing) cannot slip between reading the current
	// knowledge bases and publishing: the loaded models always bind to
	// the knowledge bases they will actually serve with.
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.current.Load()
	if set.K() != cur.set.K() {
		return fmt.Errorf("stochroute: loaded model has %d slices, engine serves %d", set.K(), cur.set.K())
	}
	for s := 0; s < set.K(); s++ {
		m := set.At(s)
		if err := m.AttachKB(cur.set.At(s).KB); err != nil {
			return fmt.Errorf("stochroute: slice %d: %w", s, err)
		}
		if m.MaxBuckets == 0 {
			m.MaxBuckets = cur.set.At(s).MaxBuckets
		}
	}
	_, err = e.swapSetLocked(set, nil)
	return err
}

// AlternativeRoute is one member of the stochastic skyline.
type AlternativeRoute = routing.ParetoRoute

// AlternativeRoutes enumerates mutually non-dominated routes between the
// endpoints within the given time horizon: the route set a user with an
// unknown deadline would choose from. The budget-routing answer for any
// budget within the horizon is (up to search caps) a member of this set.
func (e *Engine) AlternativeRoutes(source, dest VertexID, horizon float64, maxRoutes int) ([]AlternativeRoute, error) {
	return routing.ParetoRoutes(e.graph, e.current.Load().model0(), source, dest, routing.ParetoOptions{
		Horizon:   horizon,
		MaxRoutes: maxRoutes,
	})
}

// RankedAlternatives generates the k best mean-cost candidate paths
// (Yen's algorithm) and ranks them by the hybrid model's on-time
// probability at the given budget — the k-shortest-paths baseline.
func (e *Engine) RankedAlternatives(source, dest VertexID, budget float64, k int) ([]routing.ScoredPath, error) {
	cur := e.current.Load()
	return routing.KSPBudgetRouting(e.graph, cur.model0(), func(id EdgeID) float64 {
		return cur.kb0().Edge(id).Mean
	}, source, dest, budget, k)
}

// PairExample returns the hybrid, convolution and (when a world is
// present) ground-truth distributions for one adjacent edge pair — the
// unit the paper's KL evaluation compares.
func (e *Engine) PairExample(first, second EdgeID) (hybridDist, convDist, truth *Hist, err error) {
	cur := e.current.Load()
	hybridDist, err = cur.model0().PairSumEstimate(first, second)
	if err != nil {
		return nil, nil, nil, err
	}
	convDist = hist.MustConvolve(cur.kb0().Edge(first).Marginal, cur.kb0().Edge(second).Marginal)
	if e.world != nil {
		truth = e.world.PairJointSum(first, second, e.graph.Edge(second).From)
	}
	return hybridDist, convDist, truth, nil
}
