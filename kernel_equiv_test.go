package stochroute

import (
	"fmt"
	"testing"

	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/routing"
)

// plainCosterView hides the trained model's ScratchCoster capability so
// PBR takes the heap path — the pre-kernel behaviour.
type plainCosterView struct {
	c hybrid.Coster
}

func (p plainCosterView) InitialHist(e graph.EdgeID) *hist.Hist { return p.c.InitialHist(e) }
func (p plainCosterView) Extend(v *hist.Hist, lastEdge, next graph.EdgeID) *hist.Hist {
	return p.c.Extend(v, lastEdge, next)
}
func (p plainCosterView) MinEdgeTime(e graph.EdgeID) float64 { return p.c.MinEdgeTime(e) }
func (p plainCosterView) Width() float64                     { return p.c.Width() }

// TestKernelEquivalenceWithTrainedModel runs full PBR queries with the
// real trained hybrid model — classifier decisions, estimated
// extensions, MLP inference and all — through the arena-backed kernel
// and the plain heap path, demanding identical routes, bit-equal
// probabilities and identical search telemetry. Together with the
// convolution-coster equivalence test in internal/routing this proves
// the allocation-free refactor changes where floats live, not what any
// query answers.
func TestKernelEquivalenceWithTrainedModel(t *testing.T) {
	e := testEngine(t)
	model := e.Model()
	if _, ok := hybrid.Coster(model).(hybrid.ScratchCoster); !ok {
		t.Fatal("trained model does not implement ScratchCoster")
	}
	qs, err := e.SampleQueries(0.3, 1.2, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			continue
		}
		for _, factor := range []float64{1.15, 1.45} {
			opts := routing.Options{Budget: factor * optimistic}
			kernel, err := routing.PBR(e.Graph(), model, q.Source, q.Dest, opts)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := routing.PBR(e.Graph(), plainCosterView{model}, q.Source, q.Dest, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("query %d (%d->%d) factor %v", qi, q.Source, q.Dest, factor)
			if kernel.Found != plain.Found || kernel.Complete != plain.Complete {
				t.Fatalf("%s: found/complete diverged", label)
			}
			if kernel.Prob != plain.Prob {
				t.Fatalf("%s: prob %v vs %v (not bit-equal)", label, kernel.Prob, plain.Prob)
			}
			if len(kernel.Path) != len(plain.Path) {
				t.Fatalf("%s: path lengths %d vs %d", label, len(kernel.Path), len(plain.Path))
			}
			for i := range kernel.Path {
				if kernel.Path[i] != plain.Path[i] {
					t.Fatalf("%s: paths diverge at %d", label, i)
				}
			}
			if kernel.Dist != nil && plain.Dist != nil {
				if kernel.Dist.Min != plain.Dist.Min || len(kernel.Dist.P) != len(plain.Dist.P) {
					t.Fatalf("%s: result distribution shape diverged", label)
				}
				for i := range kernel.Dist.P {
					if kernel.Dist.P[i] != plain.Dist.P[i] {
						t.Fatalf("%s: result distribution P[%d] diverged", label, i)
					}
				}
			}
			if kernel.Expansions != plain.Expansions ||
				kernel.GeneratedLabels != plain.GeneratedLabels ||
				kernel.PrunedPotential != plain.PrunedPotential ||
				kernel.PrunedPivot != plain.PrunedPivot ||
				kernel.PrunedDominance != plain.PrunedDominance {
				t.Fatalf("%s: telemetry diverged: %+v vs %+v", label, kernel, plain)
			}
		}
	}
}
