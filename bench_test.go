// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see the experiment index in DESIGN.md §4). The benchmarks
// run on the Small substrate so `go test -bench=.` completes in minutes;
// cmd/experiments regenerates the full tables at medium/large scale.
package stochroute

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"stochroute/internal/exp"
	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/ingest"
	"stochroute/internal/netgen"
	"stochroute/internal/obs"
	"stochroute/internal/routing"
	"stochroute/internal/server"
	"stochroute/internal/traj"
)

var (
	benchOnce  sync.Once
	benchSetup *exp.Setup
	benchErr   error
)

func getBenchSetup(b *testing.B) *exp.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = exp.Build(exp.Small, io.Discard)
	})
	if benchErr != nil {
		b.Fatalf("bench setup: %v", benchErr)
	}
	return benchSetup
}

// BenchmarkE1Motivating regenerates the paper's airport table (travel
// time distributions of two paths, deadline 60 minutes).
func BenchmarkE1Motivating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunMotivating(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Convolution regenerates the convolution-vs-ground-truth
// worked example (T1/T2 observations, H1 ⊗ H2 vs truth, KL divergence).
func BenchmarkE2Convolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunConvVsTruth(nil, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3DependenceScan measures the chi-square dependence test that
// produces the "≈75% of edge pairs with data are dependent" statistic.
func BenchmarkE3DependenceScan(b *testing.B) {
	s := getBenchSetup(b)
	pairs := s.Obs.PairsWithSupport(20)
	if len(pairs) == 0 {
		b.Skip("no pairs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := pairs[i%len(pairs)]
		_, _ = s.Obs.DependenceTest(k, 3, 0.05) // constant sides may error; that is part of the scan
	}
}

// BenchmarkE4TrainEval measures the KL evaluation of the trained hybrid
// model against ground truth (the 1000-test-pair protocol, scaled to 50
// pairs per iteration).
func BenchmarkE4TrainEval(b *testing.B) {
	s := getBenchSetup(b)
	pairs := s.Obs.PairsWithSupport(20)
	if len(pairs) > 50 {
		pairs = pairs[:50]
	}
	oracle := &exp.WorldOracle{World: s.World}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.Evaluate(s.Model, s.Obs, oracle, pairs, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuery returns a deterministic query in the given band plus its
// slack budget.
func benchQuery(b *testing.B, s *exp.Setup, cat netgen.DistanceCategory) (netgen.Query, float64) {
	b.Helper()
	qs := s.Queries[cat.String()]
	if len(qs) == 0 {
		b.Skipf("no queries in %s", cat)
	}
	q := qs[0]
	_, optimistic, err := routing.Dijkstra(s.Graph, s.KB.MinEdgeTime, q.Source, q.Dest)
	if err != nil {
		b.Fatal(err)
	}
	return q, 1.35 * optimistic
}

// BenchmarkE5Quality regenerates the Quality table's query workload: one
// hybrid-model PBR query per iteration, per distance category and anytime
// limit (expansion budgets stand in for the paper's 1/5/10 s; Pinf = no
// limit).
func BenchmarkE5Quality(b *testing.B) {
	s := getBenchSetup(b)
	anytime := exp.AnytimeExpansions(s.Scale)
	limits := []struct {
		name string
		exp  int
	}{
		{"Pinf", 0},
		{"P1", anytime[0]},
		{"P5", anytime[1]},
		{"P10", anytime[2]},
	}
	for _, cat := range exp.Categories(s.Scale) {
		for _, limit := range limits {
			b.Run(fmt.Sprintf("dist=%s/limit=%s", cat, limit.name), func(b *testing.B) {
				q, budget := benchQuery(b, s, cat)
				seed, _, err := routing.MeanCostPath(s.Graph, s.KB, q.Source, q.Dest)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := routing.PBR(s.Graph, s.Model, q.Source, q.Dest, routing.Options{
						Budget:        budget,
						MaxExpansions: limit.exp,
						SeedPath:      seed,
					})
					if err != nil {
						b.Fatal(err)
					}
					_ = res
				}
			})
		}
	}
}

// BenchmarkE6Efficiency regenerates the Efficiency table's measurement:
// mean full-search PBR runtime per distance category.
func BenchmarkE6Efficiency(b *testing.B) {
	s := getBenchSetup(b)
	for _, cat := range exp.Categories(s.Scale) {
		b.Run(fmt.Sprintf("dist=%s", cat), func(b *testing.B) {
			q, budget := benchQuery(b, s, cat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := routing.PBR(s.Graph, s.Model, q.Source, q.Dest, routing.Options{
					Budget: budget,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Ablation measures the search cost with each pruning (and
// classifier mode) ablated — the design-choice benchmarks DESIGN.md §6
// calls out.
func BenchmarkE7Ablation(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	cat := cats[len(cats)/2]
	variants := []struct {
		name string
		opts routing.Options
		mode hybrid.ClassifierMode
	}{
		{"full", routing.Options{}, hybrid.Auto},
		{"no-potential", routing.Options{DisablePotentialPruning: true}, hybrid.Auto},
		{"no-pivot", routing.Options{DisablePivotPruning: true}, hybrid.Auto},
		{"no-dominance", routing.Options{DisableDominancePruning: true}, hybrid.Auto},
		{"always-convolve", routing.Options{}, hybrid.AlwaysConvolve},
		{"always-estimate", routing.Options{}, hybrid.AlwaysEstimate},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			q, budget := benchQuery(b, s, cat)
			prev := s.Model.Mode
			s.Model.Mode = v.mode
			defer func() { s.Model.Mode = prev }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := v.opts
				opts.Budget = budget
				if _, err := routing.PBR(s.Graph, s.Model, q.Source, q.Dest, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8AnytimeCurve measures one point of the anytime
// quality/effort curve (a capped PBR query on the longest category).
func BenchmarkE8AnytimeCurve(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	q, budget := benchQuery(b, s, cats[len(cats)-1])
	seed, _, err := routing.MeanCostPath(s.Graph, s.KB, q.Source, q.Dest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.PBR(s.Graph, s.Model, q.Source, q.Dest, routing.Options{
			Budget:        budget,
			MaxExpansions: 400,
			SeedPath:      seed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingPBR measures one full hybrid-model PBR query with
// allocation reporting — the kernel-efficiency benchmark of the
// distribution pipeline. Run with -benchmem to watch allocs/op; the
// allocation-free cost kernel (hist.Arena + hybrid.ScratchCoster) is
// what keeps this number flat as budgets grow.
func BenchmarkRoutingPBR(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	q, budget := benchQuery(b, s, cats[len(cats)/2])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.PBR(s.Graph, s.Model, q.Source, q.Dest, routing.Options{
			Budget: budget,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingPBRTraced is BenchmarkRoutingPBR under a sampled
// trace: every iteration runs inside a fresh always-sampled root span,
// so PBRCtx records its potentials/seed-path/expand phase spans and the
// finished trace lands in a span store. The delta against
// BenchmarkRoutingPBR is the full per-query cost of span tracing — a
// handful of small allocations (trace, root, three phase spans, attrs)
// that CI bounds so instrumentation creep is caught the same way
// kernel allocation creep is.
func BenchmarkRoutingPBRTraced(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	q, budget := benchQuery(b, s, cats[len(cats)/2])
	tracer := obs.NewTracer(obs.NewSpanStore(64, 0), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := tracer.StartBackground("bench", "bench-req")
		if _, err := routing.PBRCtx(ctx, s.Graph, s.Model, q.Source, q.Dest, routing.Options{
			Budget: budget,
		}); err != nil {
			b.Fatal(err)
		}
		tracer.Finish(root)
	}
}

// BenchmarkRoutingPBRTimeExpanded is BenchmarkRoutingPBR with
// per-extension slice lookup engaged (on a 1-slice set, so the answer
// is identical and the cost difference is pure mode overhead: one mean
// computation per generated label plus the per-slice frontier keying).
// The allocation count must stay within a few percent of
// BenchmarkRoutingPBR — the mode adds arithmetic, not allocations.
func BenchmarkRoutingPBRTimeExpanded(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	q, budget := benchQuery(b, s, cats[len(cats)/2])
	set := hybrid.SingleModelSet(s.Model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.PBR(s.Graph, set.TimeExpandedCoster(0, nil), q.Source, q.Dest, routing.Options{
			Budget:       budget,
			TimeExpanded: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoRoutes measures stochastic-skyline enumeration.
func BenchmarkParetoRoutes(b *testing.B) {
	s := getBenchSetup(b)
	cats := exp.Categories(s.Scale)
	q, budget := benchQuery(b, s, cats[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.ParetoRoutes(s.Graph, s.Model, q.Source, q.Dest, routing.ParetoOptions{
			Horizon: budget * 1.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridExtend measures the core cost-model step: one hybrid
// extension (classifier + estimation or convolution).
func BenchmarkHybridExtend(b *testing.B) {
	s := getBenchSetup(b)
	pairs := s.Obs.PairsWithSupport(20)
	if len(pairs) == 0 {
		b.Skip("no pairs")
	}
	virtuals := make([]*hist.Hist, len(pairs))
	for i, k := range pairs {
		virtuals[i] = s.Model.InitialHist(k.First)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := pairs[i%len(pairs)]
		_ = s.Model.Extend(virtuals[i%len(pairs)], k.First, k.Second)
	}
}

// BenchmarkPathCost measures the iterative virtual-edge path-cost
// computation on a 10-edge path.
func BenchmarkPathCost(b *testing.B) {
	s := getBenchSetup(b)
	qs := s.Queries[exp.Categories(s.Scale)[len(exp.Categories(s.Scale))-1].String()]
	if len(qs) == 0 {
		b.Skip("no queries")
	}
	path, _, err := routing.MeanCostPath(s.Graph, s.KB, qs[0].Source, qs[0].Dest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.PathCost(s.Model, path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentRouting measures serving-path throughput: parallel
// budget-routing queries on ONE shared engine (the read-only query
// path), raw and through the HTTP handler with the sharded result
// cache off and on. This is the perf baseline for future serving PRs.
func BenchmarkConcurrentRouting(b *testing.B) {
	e := testEngine(b)
	qs, err := e.SampleQueries(0.4, 1.2, 24, 99)
	if err != nil {
		b.Fatal(err)
	}
	budgets := make([]float64, len(qs))
	for i, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			b.Fatal(err)
		}
		budgets[i] = 1.35 * optimistic
	}
	urls := make([]string, len(qs))
	for i, q := range qs {
		urls[i] = fmt.Sprintf("/route?source=%d&dest=%d&budget=%.3f", q.Source, q.Dest, budgets[i])
	}

	b.Run("engine", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := i % len(qs)
				if _, err := e.Route(qs[k].Source, qs[k].Dest, budgets[k]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})

	serveAll := func(b *testing.B, h http.Handler) {
		b.Helper()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				req := httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				i++
			}
		})
	}

	b.Run("server/uncached", func(b *testing.B) {
		srv := server.New(e, server.Config{RouteCache: -1, PairCache: -1})
		serveAll(b, srv.Handler())
	})

	b.Run("server/cached", func(b *testing.B) {
		srv := server.New(e, server.Config{})
		h := srv.Handler()
		for _, url := range urls { // warm the cache
			req := httptest.NewRequest(http.MethodGet, url, nil)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		b.ResetTimer()
		serveAll(b, h)
	})
}

// BenchmarkIngest measures the write path's fold rate: trajectories
// per second validated and merged into the incremental observation
// aggregate on a live engine. Drift windows and rebuilds are disabled
// — they are background amortised costs, not per-trajectory ones — so
// the number is the synchronous cost a POST /ingest request pays per
// trajectory.
func BenchmarkIngest(b *testing.B) {
	e := testEngine(b)
	trs, err := traj.GenerateTrajectories(e.World(), traj.WalkConfig{
		NumTrajectories: 2048, MinEdges: 4, MaxEdges: 20, Seed: 123,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ingest.Config{
		Hybrid:                 hybrid.DefaultConfig(),
		Drift:                  ingest.DriftConfig{Window: -1},
		MinRebuildTrajectories: 1 << 30,
	}
	cfg.Hybrid.Width = e.Model().Width()
	in := ingest.New(e, cfg, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(trs)
		if accepted, rejected := in.Ingest(trs[k : k+1]); accepted != 1 || rejected != 0 {
			b.Fatalf("trajectory %d rejected", k)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trajs/s")
}

// BenchmarkConvolve measures raw histogram convolution at routing-typical
// support sizes.
func BenchmarkConvolve(b *testing.B) {
	a := hist.Uniform(100, 2, 128)
	edge := hist.Uniform(10, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hist.MustConvolve(a, edge)
	}
}

// BenchmarkDominance measures the stochastic-dominance comparison used by
// pruning (d).
func BenchmarkDominance(b *testing.B) {
	x := hist.Uniform(100, 2, 128)
	y := hist.Uniform(102, 2, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = hist.CompareCDF(x, y)
	}
}

// osmScaleFixture is the OSM-scale proving ground for ALT: a
// deterministic synthetic network of >1M directed edges (the size class
// of a large metropolitan OSM extract) with sparse synthetic temporal
// trajectories, a knowledge base over them, prebuilt ALT landmark
// tables, and a query workload with tight budgets. Built once per
// process — the graph plus tables cost a few seconds and ~150MB.
type osmScaleFixture struct {
	g       *graph.Graph
	kb      *hybrid.KnowledgeBase
	alt     *routing.ALT
	queries []netgen.Query
	budgets []float64
}

var (
	osmOnce sync.Once
	osmFix  *osmScaleFixture
	osmErr  error
)

func getOSMFixture(b *testing.B) *osmScaleFixture {
	b.Helper()
	osmOnce.Do(func() { osmFix, osmErr = buildOSMFixture() })
	if osmErr != nil {
		b.Fatalf("OSM fixture: %v", osmErr)
	}
	return osmFix
}

func buildOSMFixture() (*osmScaleFixture, error) {
	netCfg := netgen.DefaultConfig()
	netCfg.Rows, netCfg.Cols = 520, 520
	g, err := netgen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	if g.NumEdges() < 1_000_000 {
		return nil, fmt.Errorf("OSM-scale fixture has %d edges, need >= 1M", g.NumEdges())
	}

	// Synthetic temporal trajectories: deterministic random walks whose
	// per-edge times scatter around free flow and whose departures cover
	// the day. Coverage is deliberately sparse (~2%% of edges observed),
	// like map-matched GPS on a metro extract; the knowledge base fills
	// the rest with category priors.
	const width = 2.0
	r := rand.New(rand.NewSource(7))
	store := traj.NewObservationStore(g, width)
	trs := make([]traj.Trajectory, 0, 4096)
	for len(trs) < 4096 {
		v := graph.VertexID(r.Intn(g.NumVertices()))
		var tr traj.Trajectory
		tr.Departure = r.Float64() * 86400
		for len(tr.Edges) < 10 {
			out := g.Out(v)
			if len(out) == 0 {
				break
			}
			e := out[r.Intn(len(out))]
			tr.Edges = append(tr.Edges, e)
			tr.Times = append(tr.Times, g.Edge(e).FreeFlowSeconds()*(1.05+0.5*r.Float64()))
			v = g.Edge(e).To
		}
		if len(tr.Edges) >= 4 {
			trs = append(trs, tr)
		}
	}
	store.Collect(trs)
	kb, err := hybrid.BuildKnowledgeBase(g, store, width, 20)
	if err != nil {
		return nil, err
	}

	lms := routing.SelectLandmarks(g, graph.NewGridIndex(g, 2000).CellRepresentatives(), 16)
	alt, err := routing.BuildALT(g, kb.MinEdgeTime, lms)
	if err != nil {
		return nil, err
	}

	wg := netgen.NewWorkloadGen(g, 17)
	queries, err := wg.SampleCategory(netgen.DistanceCategory{LoKm: 1.5, HiKm: 3.5}, 6)
	if err != nil {
		return nil, err
	}
	budgets := make([]float64, len(queries))
	for i, q := range queries {
		_, optimistic, err := routing.Dijkstra(g, kb.MinEdgeTime, q.Source, q.Dest)
		if err != nil {
			return nil, err
		}
		budgets[i] = 1.15 * optimistic
	}

	// Equivalence guard: the benchmark pair is only meaningful if ALT
	// returns bit-identical answers, so prove it on the workload before
	// timing anything.
	coster := &hybrid.ConvolutionCoster{KB: kb, MaxBuckets: 64}
	for i, q := range queries[:2] {
		exact, err := routing.PBR(g, coster, q.Source, q.Dest, routing.Options{Budget: budgets[i]})
		if err != nil {
			return nil, err
		}
		withALT, err := routing.PBR(g, coster, q.Source, q.Dest, routing.Options{Budget: budgets[i], Potentials: alt})
		if err != nil {
			return nil, err
		}
		if exact.Prob != withALT.Prob || len(exact.Path) != len(withALT.Path) {
			return nil, fmt.Errorf("query %d: ALT diverges from exact potentials (prob %v vs %v)", i, exact.Prob, withALT.Prob)
		}
		for j := range exact.Path {
			if exact.Path[j] != withALT.Path[j] {
				return nil, fmt.Errorf("query %d: ALT path diverges at hop %d", i, j)
			}
		}
	}
	return &osmScaleFixture{g: g, kb: kb, alt: alt, queries: queries, budgets: budgets}, nil
}

// BenchmarkRoutingPBROSM is the tentpole scale proof: the same
// budget-routing workload on the >1M-edge network, once with exact
// per-query backward-Dijkstra potentials and once with the prebuilt ALT
// tables. The exact variant pays a full |V|-heap sweep before every
// search; ALT replaces it with memoised table lookups, which is where
// the >=5x comes from. Answers are bit-identical (the fixture proves it
// at build time).
func BenchmarkRoutingPBROSM(b *testing.B) {
	f := getOSMFixture(b)
	run := func(b *testing.B, src routing.PotentialSource) {
		coster := &hybrid.ConvolutionCoster{KB: f.kb, MaxBuckets: 64}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % len(f.queries)
			if _, err := routing.PBR(f.g, coster, f.queries[k].Source, f.queries[k].Dest, routing.Options{
				Budget:     f.budgets[k],
				Potentials: src,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exact-potentials", func(b *testing.B) { run(b, nil) })
	b.Run("alt-potentials", func(b *testing.B) { run(b, f.alt) })
}
