package stochroute

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stochroute/internal/ingest"
	"stochroute/internal/obs"
	"stochroute/internal/replay"
	"stochroute/internal/server"
	"stochroute/internal/traj"
)

// TestOnlineIngestDriftRebuildSwapE2E drives the whole online-learning
// loop over real HTTP: a service on a synthetic world receives a
// stream of shifted-distribution trajectories through POST /ingest
// (via the cmd/replay streaming client), the drift monitor fires, a
// background rebuild retrains the model, the epoch-tagged hot swap
// publishes it, /stats reports the new epoch, and post-swap /route
// answers reflect the shifted distributions — all while concurrent
// queries keep succeeding.
func TestOnlineIngestDriftRebuildSwapE2E(t *testing.T) {
	// A dedicated small engine: the test swaps its model, so it must
	// not share the package fixture.
	cfg := DefaultConfig()
	cfg.Network.Rows, cfg.Network.Cols = 10, 10
	cfg.Network.CellMeters = 130
	cfg.Walk.NumTrajectories = 1200
	cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 300, 80
	cfg.Hybrid.MinPairObs = 8
	cfg.Hybrid.Estimator.Train.Epochs = 12
	cfg.Hybrid.PrefixRows = 0
	eng, err := BuildEngine(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	// The drifted world: identical structure (same graph, same seed,
	// same dependence flags) but congestion multipliers doubled —
	// every edge's travel-time distribution shifts far beyond the
	// drift threshold.
	wcfg := cfg.World
	wcfg.ModeFactors = scaleFactors(wcfg.ModeFactors, 2)
	scaled := make(map[RoadCategory][]float64, len(wcfg.CategoryFactors))
	for cat, f := range wcfg.CategoryFactors {
		scaled[cat] = scaleFactors(f, 2)
	}
	wcfg.CategoryFactors = scaled
	shiftedWorld, err := traj.NewWorld(eng.Graph(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	shiftTrs, err := traj.GenerateTrajectories(shiftedWorld, traj.WalkConfig{
		NumTrajectories: 900, MinEdges: 4, MaxEdges: 14, Seed: 77,
		RouteFraction: 0.5, NumRoutes: 300, RouteJitter: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The full observability wiring, exactly as cmd/serve assembles it:
	// one registry shared by the engine's search telemetry, the
	// ingestor's drift/swap series and the server's request metrics.
	reg := obs.NewRegistry()
	eng.SetSearchMetrics(obs.NewSearchMetrics(reg, eng.NumSlices()))

	retrain := cfg.Hybrid
	retrain.MinPairObs = 6
	retrain.TrainPairs, retrain.TestPairs = 200, 50
	ing := ingest.New(eng, ingest.Config{
		Hybrid: retrain,
		Drift: ingest.DriftConfig{
			Window:     250,
			MinEdgeObs: 6,
		},
		MinRebuildTrajectories: 300,
		Metrics:                obs.NewIngestMetrics(reg, eng.NumSlices()),
	}, io.Discard)

	srv := server.New(eng, server.Config{Ingestor: ing, Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pick a serving query and record the pre-swap answer, twice so
	// the second response is a cache hit that a correct swap must
	// invalidate.
	qs, err := eng.SampleQueries(0.5, 1.2, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	optimistic, err := eng.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		t.Fatal(err)
	}
	routeURL := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.2f", ts.URL, q.Source, q.Dest, 1.6*optimistic)
	pre := getRoute(t, routeURL)
	if pre.ModelEpoch != 1 || !pre.Found {
		t.Fatalf("pre-swap route = %+v, want found at epoch 1", pre)
	}
	if cached := getRoute(t, routeURL); !cached.Cached || cached.ModelEpoch != 1 {
		t.Fatalf("second pre-swap request should be an epoch-1 cache hit: %+v", cached)
	}

	// Concurrent read traffic for the whole run: every response must
	// succeed regardless of ingestion, drift checks and the swap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	qerrs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := qs[(w+i)%len(qs)]
				opt, err := eng.OptimisticTime(k.Source, k.Dest)
				if err != nil {
					continue
				}
				url := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.2f", ts.URL, k.Source, k.Dest, 1.6*opt)
				resp, err := client.Get(url)
				if err != nil {
					qerrs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					qerrs <- fmt.Errorf("concurrent /route status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Stream the drifted trajectories through POST /ingest with the
	// cmd/replay client.
	rep, err := replay.Stream(context.Background(), shiftTrs, replay.Options{
		BaseURL: ts.URL,
		Batch:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != len(shiftTrs) || rep.Rejected != 0 {
		t.Fatalf("replay accepted %d / rejected %d of %d", rep.Accepted, rep.Rejected, len(shiftTrs))
	}

	// The rebuild runs in the background: watch /stats until the model
	// epoch advances.
	deadline := time.Now().Add(120 * time.Second)
	var st statsView
	for {
		st = getStats(t, ts.URL+"/stats")
		if st.ModelEpoch >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("model epoch never advanced: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.Ingest == nil {
		t.Fatal("/stats has no ingest block")
	}
	if st.Ingest.DriftEvents == 0 {
		t.Errorf("drift detection never fired: %+v", st.Ingest)
	}
	if st.Ingest.Rebuilds == 0 {
		t.Errorf("no successful rebuild recorded: %+v", st.Ingest)
	}
	if st.Ingest.LastSwapUnixMS == 0 {
		t.Error("last-swap timestamp missing from /stats")
	}

	close(stop)
	wg.Wait()
	close(qerrs)
	for err := range qerrs {
		t.Error(err)
	}

	// Post-swap, the identical request must not resurrect the epoch-1
	// cache entry and must reflect the doubled travel times.
	post := getRoute(t, routeURL)
	if post.ModelEpoch < 2 {
		t.Fatalf("post-swap route still at epoch %d: %+v", post.ModelEpoch, post)
	}
	if !post.Found {
		t.Fatalf("post-swap route found nothing: %+v", post)
	}
	if post.MeanSeconds < pre.MeanSeconds*1.3 {
		t.Errorf("post-swap mean %.1fs does not reflect the 2x shift (pre-swap %.1fs)",
			post.MeanSeconds, pre.MeanSeconds)
	}

	// /healthz reports the new epoch too, and the swap cleared any
	// degraded window the drift opened.
	var health struct {
		ModelEpoch uint64 `json:"model_epoch"`
		Degraded   bool   `json:"degraded"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.ModelEpoch != st.ModelEpoch {
		t.Errorf("/healthz epoch %d != /stats epoch %d", health.ModelEpoch, st.ModelEpoch)
	}
	if health.Degraded {
		t.Error("/healthz still degraded after a successful swap")
	}

	// The /metrics exposition must move in lockstep with /stats: the
	// drift-triggered hot swap is visible as swap_total{slice="0"} ==
	// Status.Rebuilds, the slice epoch gauge equals the slice's serving
	// generation, and the engine's search telemetry recorded the query
	// traffic above.
	st = getStats(t, ts.URL+"/stats")
	samples := scrapeSamples(t, ts.URL+"/metrics")
	metric := func(name, slice string) float64 {
		t.Helper()
		for _, s := range samples {
			if s.Name == name && s.Label("slice") == slice {
				return s.Value
			}
		}
		t.Fatalf("series %s{slice=%q} absent from /metrics", name, slice)
		return 0
	}
	if got := metric("swap_total", "0"); got != float64(st.Ingest.Rebuilds) {
		t.Errorf(`swap_total{slice="0"} = %v, /stats rebuilds = %d`, got, st.Ingest.Rebuilds)
	}
	if got := metric("slice_epoch", "0"); got != float64(st.SliceEpochs[0]) {
		t.Errorf(`slice_epoch{slice="0"} = %v, /stats slice epoch = %d`, got, st.SliceEpochs[0])
	}
	if got := metric("model_epoch", ""); got != float64(st.ModelEpoch) {
		t.Errorf("model_epoch gauge = %v, /stats model epoch = %d", got, st.ModelEpoch)
	}
	if got := metric("ingest_drift_events_total", "0"); got != float64(st.Ingest.DriftEvents) {
		t.Errorf("drift events gauge = %v, /stats = %d", got, st.Ingest.DriftEvents)
	}
	if got := metric("search_expansions_count", "0"); got == 0 {
		t.Error("engine search telemetry never recorded despite route traffic")
	}
	if got := metric("degraded", ""); got != 0 {
		t.Errorf("degraded gauge = %v after successful swap", got)
	}
}

// scrapeSamples fetches and parses one /metrics exposition.
func scrapeSamples(t *testing.T, url string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return samples
}

func scaleFactors(f []float64, by float64) []float64 {
	out := make([]float64, len(f))
	for i, x := range f {
		out[i] = x * by
	}
	return out
}

type routeView struct {
	Found       bool    `json:"found"`
	Complete    bool    `json:"complete"`
	Prob        float64 `json:"prob"`
	MeanSeconds float64 `json:"mean_s"`
	ModelEpoch  uint64  `json:"model_epoch"`
	Cached      bool    `json:"cached"`
}

type statsView struct {
	ModelEpoch  uint64         `json:"model_epoch"`
	SliceEpochs []uint64       `json:"slice_epochs"`
	Ingest      *ingest.Status `json:"ingest"`
}

func getRoute(t *testing.T, url string) routeView {
	t.Helper()
	var v routeView
	getJSON(t, url, &v)
	return v
}

func getStats(t *testing.T, url string) statsView {
	t.Helper()
	var v statsView
	getJSON(t, url, &v)
	return v
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("%s: %v in %q", url, err, body)
	}
}
