package stochroute

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stochroute/internal/gateway"
	"stochroute/internal/hybrid"
	"stochroute/internal/ingest"
	"stochroute/internal/netgen"
	"stochroute/internal/obs"
	"stochroute/internal/replay"
	"stochroute/internal/server"
	"stochroute/internal/traj"
)

// --- fleet substrate --------------------------------------------------
//
// One synthetic world, trained once per test binary. Each replica
// deserializes its own copy of the model set (AttachKB mutates the
// set, so replicas must not share one) and rebuilds the knowledge base
// from the same trajectories — the exact serving path cmd/serve takes
// in artifact mode, and the construction that makes every replica
// bit-identical to its peers.

var fleetOnce sync.Once
var fleetBase struct {
	cfg      Config
	g        *Graph
	trajs    []Trajectory
	setBytes []byte
	err      error
}

func fleetSubstrate(t *testing.T) (Config, *Graph, []Trajectory, []byte) {
	t.Helper()
	fleetOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Network.Rows, cfg.Network.Cols = 10, 10
		cfg.Network.CellMeters = 130
		cfg.Walk.NumTrajectories = 1000
		cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 250, 60
		cfg.Hybrid.MinPairObs = 8
		cfg.Hybrid.Estimator.Train.Epochs = 10
		cfg.Hybrid.PrefixRows = 0
		fleetBase.cfg = cfg
		g, err := netgen.Generate(cfg.Network)
		if err != nil {
			fleetBase.err = err
			return
		}
		world, err := traj.NewWorld(g, cfg.World)
		if err != nil {
			fleetBase.err = err
			return
		}
		trajs, err := traj.GenerateTrajectories(world, cfg.Walk)
		if err != nil {
			fleetBase.err = err
			return
		}
		eng, err := NewEngineFromObservations(g, trajs, cfg.Hybrid, io.Discard)
		if err != nil {
			fleetBase.err = err
			return
		}
		var buf bytes.Buffer
		if err := hybrid.WriteModelSet(&buf, eng.ModelSet()); err != nil {
			fleetBase.err = err
			return
		}
		fleetBase.g, fleetBase.trajs, fleetBase.setBytes = g, trajs, buf.Bytes()
	})
	if fleetBase.err != nil {
		t.Fatal(fleetBase.err)
	}
	return fleetBase.cfg, fleetBase.g, fleetBase.trajs, fleetBase.setBytes
}

// killSwitch simulates a hard replica kill at the transport layer:
// while down, every connection is hijacked and closed without a byte
// of response — what a crashed process looks like to the gateway's
// client. Revivable, unlike ts.Close.
type killSwitch struct {
	down atomic.Bool
	next http.Handler
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	k.next.ServeHTTP(w, r)
}

type fleetReplica struct {
	id   string
	ts   *httptest.Server
	kill *killSwitch
	eng  *Engine
}

func newFleetReplica(t *testing.T, id string, withIngest bool) *fleetReplica {
	t.Helper()
	cfg, g, trajs, setBytes := fleetSubstrate(t)
	set, err := hybrid.ReadModelSet(bytes.NewReader(setBytes))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineWithModelSet(g, trajs, cfg.Hybrid.Width, cfg.Hybrid.MinPairObs, set)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var ing *ingest.Ingestor
	if withIngest {
		retrain := cfg.Hybrid
		retrain.MinPairObs = 6
		retrain.TrainPairs, retrain.TestPairs = 200, 50
		ing = ingest.New(eng, ingest.Config{
			Hybrid:                 retrain,
			Drift:                  ingest.DriftConfig{Window: 250, MinEdgeObs: 6},
			MinRebuildTrajectories: 300,
			Metrics:                obs.NewIngestMetrics(reg, eng.NumSlices()),
		}, io.Discard)
	}
	srv := server.New(eng, server.Config{Metrics: reg, Ingestor: ing, ReplicaID: id})
	ks := &killSwitch{next: srv.Handler()}
	ts := httptest.NewServer(ks)
	t.Cleanup(ts.Close)
	return &fleetReplica{id: id, ts: ts, kill: ks, eng: eng}
}

type testFleet struct {
	gw   *gateway.Gateway
	ts   *httptest.Server
	reps []*fleetReplica
}

func (f *testFleet) replica(id string) *fleetReplica {
	for _, r := range f.reps {
		if r.id == id {
			return r
		}
	}
	return nil
}

func newTestFleet(t *testing.T, n int, withIngest bool, mutate func(*gateway.Config)) *testFleet {
	t.Helper()
	f := &testFleet{}
	entries := make([]gateway.Replica, 0, n)
	for i := 0; i < n; i++ {
		rep := newFleetReplica(t, fmt.Sprintf("r%d", i+1), withIngest)
		f.reps = append(f.reps, rep)
		entries = append(entries, gateway.Replica{ID: rep.id, URL: rep.ts.URL})
	}
	gcfg := gateway.Config{
		Replicas:      entries,
		ProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:  5 * time.Second,
		DownAfter:     2,
		IngestBackoff: 25 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&gcfg)
	}
	gw, err := gateway.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	gw.Start(ctx)
	f.gw = gw
	f.ts = httptest.NewServer(gw.Handler())
	t.Cleanup(func() { f.ts.Close(); cancel() })
	return f
}

// gwStatsView decodes the gateway's /stats: replica entries flatten the
// health view and the per-replica counters.
type gwStatsView struct {
	Status   string `json:"status"`
	Replicas []struct {
		ID              string `json:"id"`
		State           string `json:"state"`
		Failovers       uint64 `json:"failovers"`
		IngestEnqueued  uint64 `json:"ingest_enqueued"`
		IngestDelivered uint64 `json:"ingest_delivered"`
		IngestRetries   uint64 `json:"ingest_retries"`
		IngestDropped   uint64 `json:"ingest_dropped"`
		BatchItems      uint64 `json:"batch_items"`
	} `json:"replicas"`
}

func gwStats(t *testing.T, baseURL string) gwStatsView {
	t.Helper()
	var v gwStatsView
	getJSON(t, baseURL+"/stats", &v)
	return v
}

func (v gwStatsView) of(id string) (int, bool) {
	for i, r := range v.Replicas {
		if r.ID == id {
			return i, true
		}
	}
	return 0, false
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// getVia fetches url and returns the status code, X-Replica header and
// body.
func getVia(t *testing.T, client *http.Client, url string) (int, string, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Replica"), body
}

// --- the fault-injection e2e -----------------------------------------

// TestGatewayFaultInjectionE2E kills one of three replicas in the
// middle of concurrent query load and requires the outage to be
// invisible to clients: every request throughout the run answers 200
// (in-flight dispatches to the dead replica fail over within the same
// request), the gateway's failover counter and health view record the
// kill, and after revival the replica's probes bring it back and its
// hash range returns to it.
func TestGatewayFaultInjectionE2E(t *testing.T) {
	f := newTestFleet(t, 3, false, nil)
	client := &http.Client{Timeout: 30 * time.Second}

	qs, err := f.reps[0].eng.SampleQueries(0.5, 1.2, 24, 31)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(qs))
	for i, q := range qs {
		opt, err := f.reps[0].eng.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		urls[i] = fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.2f", f.ts.URL, q.Source, q.Dest, 1.6*opt)
	}

	// Baseline pass: every query answers through the gateway, and the
	// X-Replica attribution tells us each key's owner.
	owners := make([]string, len(urls))
	for i, u := range urls {
		code, rep, body := getVia(t, client, u)
		if code != http.StatusOK {
			t.Fatalf("baseline GET %s: status %d: %s", u, code, body)
		}
		if rep == "" {
			t.Fatalf("baseline GET %s: no X-Replica attribution", u)
		}
		owners[i] = rep
	}
	// Stability: the same key routes to the same replica every time —
	// the cache-locality contract.
	for i, u := range urls {
		if _, rep, _ := getVia(t, client, u); rep != owners[i] {
			t.Fatalf("key %d moved from %s to %s with a healthy fleet", i, owners[i], rep)
		}
	}

	// The victim: the replica owning the most keys, so the kill
	// actually disrupts routed load.
	counts := map[string]int{}
	for _, o := range owners {
		counts[o]++
	}
	victimID := ""
	for id, c := range counts {
		if victimID == "" || c > counts[victimID] {
			victimID = id
		}
	}
	victim := f.replica(victimID)
	if victim == nil {
		t.Fatalf("owner %q is not a fleet replica", victimID)
	}

	// Concurrent load for the whole scenario: 4 workers, every request
	// must answer 200 no matter what happens to the victim.
	stop := make(chan struct{})
	qerrs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &http.Client{Timeout: 30 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(w+i)%len(urls)]
				resp, err := c.Get(u)
				if err != nil {
					qerrs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					qerrs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Let the load establish, then kill the victim mid-flight.
	time.Sleep(200 * time.Millisecond)
	victim.kill.down.Store(true)
	waitFor(t, 10*time.Second, "gateway to mark the victim down", func() bool {
		st := gwStats(t, f.ts.URL)
		i, ok := st.of(victimID)
		return ok && st.Replicas[i].State == "down"
	})

	// While down: every key the victim owned answers from a survivor.
	for i, u := range urls {
		if owners[i] != victimID {
			continue
		}
		code, rep, body := getVia(t, client, u)
		if code != http.StatusOK {
			t.Fatalf("victim-owned key %d during outage: status %d: %s", i, code, body)
		}
		if rep == victimID {
			t.Fatalf("victim-owned key %d still attributed to dead replica %s", i, victimID)
		}
	}
	st := gwStats(t, f.ts.URL)
	if st.Status != "degraded" {
		t.Errorf("fleet status %q with one replica down, want degraded", st.Status)
	}
	if i, ok := st.of(victimID); !ok || st.Replicas[i].Failovers == 0 {
		t.Error("failover counter never incremented for the killed replica")
	}

	// Revive: probes must reclaim the replica and its hash range.
	victim.kill.down.Store(false)
	waitFor(t, 10*time.Second, "the revived replica to turn healthy", func() bool {
		st := gwStats(t, f.ts.URL)
		i, ok := st.of(victimID)
		return ok && st.Replicas[i].State == "healthy"
	})
	for i, u := range urls {
		if owners[i] != victimID {
			continue
		}
		code, rep, _ := getVia(t, client, u)
		if code != http.StatusOK || rep != victimID {
			t.Fatalf("key %d not reclaimed after revival: status %d, replica %q (want %s)", i, code, rep, victimID)
		}
	}
	// And the survivors' keys never moved through the whole episode.
	for i, u := range urls {
		if owners[i] == victimID {
			continue
		}
		if _, rep, _ := getVia(t, client, u); rep != owners[i] {
			t.Errorf("survivor-owned key %d moved from %s to %s across the outage", i, owners[i], rep)
		}
	}

	close(stop)
	wg.Wait()
	close(qerrs)
	for err := range qerrs {
		t.Error(err)
	}

	// The gateway's /metrics exposition carries the episode: the victim
	// flapped its healthy gauge back to 1, and failovers are visible as
	// a per-replica series.
	samples := scrapeSamples(t, f.ts.URL+"/metrics")
	find := func(name, replica string) (float64, bool) {
		for _, s := range samples {
			if s.Name == name && s.Label("replica") == replica {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find("gateway_replica_healthy", victimID); !ok || v != 1 {
		t.Errorf("gateway_replica_healthy{replica=%q} = %v, %v — want 1 after revival", victimID, v, ok)
	}
	if v, ok := find("gateway_failovers_total", victimID); !ok || v == 0 {
		t.Errorf("gateway_failovers_total{replica=%q} = %v, %v — want > 0", victimID, v, ok)
	}

	// When GATEWAY_METRICS_OUT is set, the post-episode gateway scrape
	// is written there (CI uploads it as a build artifact, mirroring the
	// METRICS_SCRAPE_OUT idiom of the single-replica exposition test),
	// so reviewers see the fleet series a PR adds or renames.
	if out := os.Getenv("GATEWAY_METRICS_OUT"); out != "" {
		resp, err := client.Get(f.ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("scraping gateway metrics for artifact: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading gateway metrics artifact: %v", err)
		}
		if err := os.WriteFile(out, body, 0o644); err != nil {
			t.Fatalf("writing gateway metrics artifact: %v", err)
		}
	}
}

// --- scatter/gather bit-identity -------------------------------------

// TestGatewayScatterGatherBitIdentity proves the gather step's central
// claim: a mixed batch through the gateway returns, per item, the
// exact bytes a single replica would have produced — same order, same
// route, same probabilities, same distribution-derived values, same
// epoch — with only the replica attribution added. Runs its batches
// concurrently so -race covers the scatter path.
func TestGatewayScatterGatherBitIdentity(t *testing.T) {
	f := newTestFleet(t, 3, false, nil)
	solo := newFleetReplica(t, "solo", false)

	qs, err := solo.eng.SampleQueries(0.4, 1.4, 36, 17)
	if err != nil {
		t.Fatal(err)
	}
	type bq struct {
		Source int     `json:"source"`
		Dest   int     `json:"dest"`
		Budget float64 `json:"budget_s"`
	}
	items := make([]bq, 0, len(qs))
	seen := map[[2]int]bool{}
	for _, q := range qs {
		pair := [2]int{int(q.Source), int(q.Dest)}
		if seen[pair] {
			continue // a duplicate pair would be a cache hit on one side only
		}
		seen[pair] = true
		opt, err := solo.eng.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, bq{Source: int(q.Source), Dest: int(q.Dest), Budget: 1.5 * opt})
	}
	if len(items) < 12 {
		t.Fatalf("only %d distinct pairs sampled", len(items))
	}

	// Disjoint sub-batches, posted concurrently: each goroutine compares
	// the gateway's answer for its batch with the standalone replica's
	// answer for the identical batch. Disjoint queries keep both sides'
	// caches cold for every item.
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	attributed := make(chan string, len(items))
	for w := 0; w < workers; w++ {
		chunk := items[w*len(items)/workers : (w+1)*len(items)/workers]
		if len(chunk) == 0 {
			continue
		}
		wg.Add(1)
		go func(chunk []bq) {
			defer wg.Done()
			body, err := json.Marshal(map[string]any{"queries": chunk})
			if err != nil {
				errs <- err
				return
			}
			post := func(base string) ([]json.RawMessage, error) {
				resp, err := http.Post(base+"/route/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					return nil, err
				}
				defer resp.Body.Close()
				raw, err := io.ReadAll(resp.Body)
				if err != nil {
					return nil, err
				}
				if resp.StatusCode != http.StatusOK {
					return nil, fmt.Errorf("%s/route/batch: status %d: %s", base, resp.StatusCode, raw)
				}
				var out struct {
					Results []json.RawMessage `json:"results"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					return nil, err
				}
				return out.Results, nil
			}
			got, err := post(f.ts.URL)
			if err != nil {
				errs <- err
				return
			}
			want, err := post(solo.ts.URL)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(chunk) || len(want) != len(chunk) {
				errs <- fmt.Errorf("result counts: gateway %d, solo %d, batch %d", len(got), len(want), len(chunk))
				return
			}
			for i := range got {
				var attr struct {
					Replica string `json:"replica"`
					Found   bool   `json:"found"`
				}
				if err := json.Unmarshal(got[i], &attr); err != nil {
					errs <- fmt.Errorf("item %d does not parse: %v", i, err)
					return
				}
				if attr.Replica == "" {
					errs <- fmt.Errorf("item %d has no replica attribution: %s", i, got[i])
					return
				}
				attributed <- attr.Replica
				stripped := bytes.Replace(got[i],
					[]byte(`"replica":"`+attr.Replica+`",`), nil, 1)
				if !bytes.Equal(stripped, want[i]) {
					errs <- fmt.Errorf("item %d differs from single-replica answer:\n gateway: %s\n    solo: %s", i, stripped, want[i])
					return
				}
			}
		}(chunk)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	close(attributed)
	dist := map[string]int{}
	for id := range attributed {
		dist[id]++
	}
	if len(dist) < 2 {
		t.Errorf("all batch items landed on %v — the scatter never split the batch", dist)
	}

	// Co-location: a batch item and the equivalent single query route to
	// the same replica, so both warm the same cache.
	for _, it := range items[:4] {
		u := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.2f", f.ts.URL, it.Source, it.Dest, it.Budget)
		client := &http.Client{Timeout: 30 * time.Second}
		_, rep, _ := getVia(t, client, u)
		body, _ := json.Marshal(map[string]any{"queries": []bq{it}})
		resp, err := http.Post(f.ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Results []struct {
				Replica string `json:"replica"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(out.Results) != 1 || out.Results[0].Replica != rep {
			t.Errorf("pair (%d,%d): single query on %s, batch item on %v — keys must co-locate",
				it.Source, it.Dest, rep, out.Results)
		}
	}
}

// --- ingest fan-out ---------------------------------------------------

// TestGatewayIngestFanoutE2E streams a drifted trajectory set (through
// an SRT2 encode/decode round trip) into the gateway's /ingest while
// one replica is down. Every replica — including the dead one, which
// revives mid-stream and catches up from its retry queue — must see
// the full stream: drift fires and the model epoch advances on all
// three, with zero batches dropped.
func TestGatewayIngestFanoutE2E(t *testing.T) {
	f := newTestFleet(t, 3, true, func(c *gateway.Config) {
		// The dead replica retries for the whole test rather than
		// exhausting a small budget: the scenario under test is catch-up,
		// not drop.
		c.IngestAttempts = 1000
		c.IngestBackoffCap = 250 * time.Millisecond
	})
	cfg, _, _, _ := fleetSubstrate(t)

	// The drifted world: same structure, congestion multipliers doubled
	// (as in the single-replica ingest e2e).
	wcfg := cfg.World
	wcfg.ModeFactors = scaleFactors(wcfg.ModeFactors, 2)
	scaled := make(map[RoadCategory][]float64, len(wcfg.CategoryFactors))
	for cat, fs := range wcfg.CategoryFactors {
		scaled[cat] = scaleFactors(fs, 2)
	}
	wcfg.CategoryFactors = scaled
	shiftedWorld, err := traj.NewWorld(f.reps[0].eng.Graph(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	shiftTrs, err := traj.GenerateTrajectories(shiftedWorld, traj.WalkConfig{
		NumTrajectories: 900, MinEdges: 4, MaxEdges: 14, Seed: 77,
		RouteFraction: 0.5, NumRoutes: 300, RouteJitter: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}

	// SRT2 round trip: what cmd/replay does with a file on disk.
	var srt2 bytes.Buffer
	if err := traj.WriteTrajectories(&srt2, shiftTrs); err != nil {
		t.Fatal(err)
	}
	decoded, err := traj.ReadTrajectoryStream(&srt2, f.reps[0].eng.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(shiftTrs) {
		t.Fatalf("SRT2 round trip lost trajectories: %d of %d", len(decoded), len(shiftTrs))
	}

	// Kill one replica before the stream starts: its batches queue.
	victim := f.reps[2]
	victim.kill.down.Store(true)

	rep, err := replay.Stream(context.Background(), decoded, replay.Options{
		BaseURL: f.ts.URL,
		Batch:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != len(decoded) || rep.Rejected != 0 {
		t.Fatalf("gateway replay accepted %d / rejected %d of %d", rep.Accepted, rep.Rejected, len(decoded))
	}

	// Revive the victim: its worker drains the queued batches in order.
	victim.kill.down.Store(false)

	// Delivery completes everywhere, with the victim's catch-up visible
	// as retries and zero drops anywhere.
	waitFor(t, 60*time.Second, "every queued batch to be delivered", func() bool {
		st := gwStats(t, f.ts.URL)
		for _, r := range st.Replicas {
			if r.IngestDelivered != r.IngestEnqueued {
				return false
			}
		}
		return true
	})
	st := gwStats(t, f.ts.URL)
	for _, r := range st.Replicas {
		if r.IngestDropped != 0 {
			t.Errorf("replica %s dropped %d ingest batches", r.ID, r.IngestDropped)
		}
		if r.IngestEnqueued == 0 {
			t.Errorf("replica %s never had a batch enqueued", r.ID)
		}
	}
	if i, ok := st.of(victim.id); !ok || st.Replicas[i].IngestRetries == 0 {
		t.Error("the dead replica's catch-up never exercised the retry queue")
	}

	// Every replica's drift monitor fires on the full stream and its
	// background rebuild advances the model epoch — the victim included.
	for _, r := range f.reps {
		r := r
		waitFor(t, 180*time.Second, fmt.Sprintf("replica %s to swap to epoch 2", r.id), func() bool {
			var st statsView
			getJSON(t, r.ts.URL+"/stats", &st)
			return st.ModelEpoch >= 2
		})
		var sv statsView
		getJSON(t, r.ts.URL+"/stats", &sv)
		if sv.Ingest == nil || sv.Ingest.DriftEvents == 0 {
			t.Errorf("replica %s: drift monitor never fired (%+v)", r.id, sv.Ingest)
		}
		if len(sv.SliceEpochs) == 0 || sv.SliceEpochs[0] < 2 {
			t.Errorf("replica %s: slice epoch never advanced: %v", r.id, sv.SliceEpochs)
		}
	}

	// The gateway's own health view converges on the new fleet epoch.
	waitFor(t, 15*time.Second, "gateway health to report the new epochs", func() bool {
		var gh struct {
			Status   string `json:"status"`
			Replicas []struct {
				ModelEpoch uint64 `json:"model_epoch"`
			} `json:"replicas"`
		}
		getJSON(t, f.ts.URL+"/healthz", &gh)
		if gh.Status != "ok" {
			return false
		}
		for _, r := range gh.Replicas {
			if r.ModelEpoch < 2 {
				return false
			}
		}
		return true
	})
}

// TestGatewayHealthzAndIdentity covers the fleet plumbing around the
// scenarios above: the gateway's /healthz aggregates per-replica state,
// replicas report their -replica-id identity, and mis-addressed fleets
// are visible.
func TestGatewayHealthzAndIdentity(t *testing.T) {
	f := newTestFleet(t, 2, false, nil)
	var gh struct {
		Status   string `json:"status"`
		Healthy  int    `json:"healthy"`
		Replicas []struct {
			ID         string `json:"id"`
			State      string `json:"state"`
			ModelEpoch uint64 `json:"model_epoch"`
		} `json:"replicas"`
	}
	getJSON(t, f.ts.URL+"/healthz", &gh)
	if gh.Status != "ok" || gh.Healthy != 2 {
		t.Fatalf("fresh fleet health = %+v", gh)
	}
	for _, r := range gh.Replicas {
		if r.State != "healthy" || r.ModelEpoch != 1 {
			t.Errorf("replica %s: state %s epoch %d, want healthy epoch 1", r.ID, r.State, r.ModelEpoch)
		}
	}
	// The replica's own /healthz carries its identity for the prober.
	var rh struct {
		Replica string `json:"replica"`
	}
	getJSON(t, f.reps[0].ts.URL+"/healthz", &rh)
	if rh.Replica != f.reps[0].id {
		t.Errorf("replica /healthz identity %q, want %q", rh.Replica, f.reps[0].id)
	}
	// Single-query responses carry X-Replica end to end (replica sets
	// it, gateway relays it).
	client := &http.Client{Timeout: 30 * time.Second}
	qs, err := f.reps[0].eng.SampleQueries(0.5, 1.2, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := f.reps[0].eng.OptimisticTime(qs[0].Source, qs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	u := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.2f", f.ts.URL, qs[0].Source, qs[0].Dest, 1.6*opt)
	_, rep, _ := getVia(t, client, u)
	if rep != "r1" && rep != "r2" {
		t.Errorf("X-Replica = %q, want a fleet member", rep)
	}
	// Malformed requests fail at the gateway edge without touching a
	// replica.
	code, _, body := getVia(t, client, f.ts.URL+"/route?source=3")
	if code != http.StatusBadRequest {
		t.Errorf("missing dest: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "dest") {
		t.Errorf("error does not name the missing parameter: %s", body)
	}
}
