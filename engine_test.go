package stochroute

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var (
	engOnce sync.Once
	eng     *Engine
	engErr  error
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	engOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Network.Rows, cfg.Network.Cols = 20, 20
		cfg.Network.CellMeters = 130
		cfg.Walk.NumTrajectories = 3000
		cfg.Hybrid.TrainPairs, cfg.Hybrid.TestPairs = 400, 100
		cfg.Hybrid.MinPairObs = 12
		cfg.Hybrid.Estimator.Train.Epochs = 30
		cfg.Hybrid.PrefixRows = 2000
		eng, engErr = BuildEngine(cfg, io.Discard)
	})
	if engErr != nil {
		t.Fatalf("BuildEngine: %v", engErr)
	}
	return eng
}

func TestBuildEngineEndToEnd(t *testing.T) {
	e := testEngine(t)
	if e.Graph().NumVertices() == 0 {
		t.Fatal("empty graph")
	}
	if e.Report == nil || e.Report.TestPairs == 0 {
		t.Fatal("no evaluation report")
	}
	if e.Report.MeanKLHybrid >= e.Report.MeanKLConv {
		t.Errorf("hybrid KL %v should beat convolution %v",
			e.Report.MeanKLHybrid, e.Report.MeanKLConv)
	}
	if e.World() == nil {
		t.Error("synthetic engine should expose its world")
	}
}

func TestEngineRoute(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.5, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		budget := 1.35 * optimistic
		res, err := e.Route(q.Source, q.Dest, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("no path for %v", q)
		}
		if res.Prob < 0 || res.Prob > 1 {
			t.Errorf("Prob = %v", res.Prob)
		}
		if err := res.Dist.Validate(); err != nil {
			t.Errorf("result distribution invalid: %v", err)
		}
		// The returned distribution's budget probability matches Prob.
		if math.Abs(res.Dist.ProbWithinBudget(budget)-res.Prob) > 1e-9 {
			t.Error("Prob inconsistent with Dist")
		}
	}
}

func TestEngineRouteAnytime(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(1.0, 2.0, 1, 43)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	optimistic, err := e.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteAnytime(q.Source, q.Dest, 1.35*optimistic, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("anytime with generous limit should find a path")
	}
}

func TestEnginePathDistributions(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.5, 1, 44)
	if err != nil {
		t.Fatal(err)
	}
	path, meanCost, err := e.MeanRoute(qs[0].Source, qs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if meanCost <= 0 {
		t.Errorf("mean cost %v", meanCost)
	}
	hyb, err := e.PathDistribution(path)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := e.ConvolutionDistribution(path)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := e.TrueDistribution(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]*Hist{"hybrid": hyb, "conv": conv, "truth": truth} {
		if err := h.Validate(); err != nil {
			t.Errorf("%s distribution invalid: %v", name, err)
		}
	}
	// Means should be in the same ballpark as the deterministic mean cost.
	if hyb.Mean() < meanCost*0.5 || hyb.Mean() > meanCost*2 {
		t.Errorf("hybrid mean %v far from weight-sum %v", hyb.Mean(), meanCost)
	}
}

// TestEngineConcurrentQueriesMatchSerial is the concurrency gate of the
// serving refactor: 12 goroutines answer the same routing queries on
// ONE shared engine — no clones, no locks — and every answer must be
// bit-identical to serial execution. Run with -race.
func TestEngineConcurrentQueriesMatchSerial(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.4, 1.5, 6, 47)
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		budget float64
		route  *RouteResult
		dist   *Hist
	}
	serial := make([]answer, len(qs))
	for i, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		budget := 1.35 * optimistic
		res, err := e.Route(q.Source, q.Dest, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("no path for %v", q)
		}
		dist, err := e.PathDistribution(res.Path)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = answer{budget: budget, route: res, dist: dist}
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range qs {
				want := serial[i]
				res, err := e.Route(q.Source, q.Dest, want.budget)
				if err != nil {
					errs[w] = err
					return
				}
				if res.Prob != want.route.Prob {
					errs[w] = fmt.Errorf("worker %d query %d: prob %v != serial %v", w, i, res.Prob, want.route.Prob)
					return
				}
				if !slicesEqual(res.Path, want.route.Path) {
					errs[w] = fmt.Errorf("worker %d query %d: path differs from serial", w, i)
					return
				}
				dist, err := e.PathDistribution(res.Path)
				if err != nil {
					errs[w] = err
					return
				}
				if dist.Min != want.dist.Min || !floatsEqual(dist.P, want.dist.P) {
					errs[w] = fmt.Errorf("worker %d query %d: distribution differs from serial", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	conv, est := e.DecisionCounts()
	if conv+est == 0 {
		t.Error("lifetime decision counters should have accumulated")
	}
}

func slicesEqual(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineRouteReportsDecisionStats checks the per-request telemetry
// threaded through hybrid.QueryStats.
func TestEngineRouteReportsDecisionStats(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.5, 1, 48)
	if err != nil {
		t.Fatal(err)
	}
	optimistic, err := e.OptimisticTime(qs[0].Source, qs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Route(qs[0].Source, qs[0].Dest, 1.35*optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumConvolved+res.NumEstimated == 0 {
		t.Error("route result should carry per-request decision counts")
	}
}

func TestEngineNearestVertex(t *testing.T) {
	e := testEngine(t)
	p := e.Graph().Point(0)
	if got := e.NearestVertex(p.Lat, p.Lon); got != 0 {
		t.Errorf("NearestVertex on vertex 0's location = %v", got)
	}
}

func TestEngineSaveLoadModel(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.5, 1, 45)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	optimistic, err := e.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		t.Fatal(err)
	}
	budget := 1.35 * optimistic
	before, err := e.Route(q.Source, q.Dest, budget)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.srhm")
	if err := e.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(path); err != nil {
		t.Fatal(err)
	}
	after, err := e.Route(q.Source, q.Dest, budget)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before.Prob-after.Prob) > 1e-12 {
		t.Errorf("model round trip changed answer: %v vs %v", before.Prob, after.Prob)
	}
}

func TestEngineAlternativeRoutes(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.8, 1.8, 1, 46)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	optimistic, err := e.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		t.Fatal(err)
	}
	routes, err := e.AlternativeRoutes(q.Source, q.Dest, 2.5*optimistic, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no alternative routes")
	}
	for i, r := range routes {
		if err := r.Dist.Validate(); err != nil {
			t.Errorf("route %d dist invalid: %v", i, err)
		}
		for j := i + 1; j < len(routes); j++ {
			if routes[i].Dist.Dominates(routes[j].Dist) || routes[j].Dist.Dominates(routes[i].Dist) {
				t.Errorf("skyline members %d and %d dominate each other", i, j)
			}
		}
	}
	scored, err := e.RankedAlternatives(q.Source, q.Dest, 1.35*optimistic, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) == 0 {
		t.Fatal("no ranked alternatives")
	}
	for i := 1; i < len(scored); i++ {
		if scored[i].Prob > scored[i-1].Prob+1e-12 {
			t.Error("ranked alternatives not sorted by probability")
		}
	}
}

func TestEngineSaveLoadGraph(t *testing.T) {
	e := testEngine(t)
	path := filepath.Join(t.TempDir(), "net.srg")
	if err := e.SaveGraph(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != e.Graph().NumVertices() || g.NumEdges() != e.Graph().NumEdges() {
		t.Error("graph round trip size mismatch")
	}
}

func TestEnginePairExample(t *testing.T) {
	e := testEngine(t)
	pairs := e.Observations().PairsWithSupport(20)
	if len(pairs) == 0 {
		t.Skip("no pairs")
	}
	hyb, conv, truth, err := e.PairExample(pairs[0].First, pairs[0].Second)
	if err != nil {
		t.Fatal(err)
	}
	if hyb == nil || conv == nil || truth == nil {
		t.Fatal("missing distributions")
	}
	if err := hyb.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMotivatingExampleThroughPublicAPI(t *testing.T) {
	p1, err := NewHistFromPairs(map[float64]float64{45: 0.3, 55: 0.6, 65: 0.1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewHistFromPairs(map[float64]float64{45: 0.6, 55: 0.2, 65: 0.2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ProbWithinBudget(60) <= p2.ProbWithinBudget(60) {
		t.Error("P1 should beat P2 at the deadline")
	}
	if p2.Mean() >= p1.Mean() {
		t.Error("P2 should have the lower mean")
	}
	conv, err := Convolve(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := conv.Validate(); err != nil {
		t.Error(err)
	}
	if kl, err := KLDivergence(p1, p2, 1e-9); err != nil || kl <= 0 {
		t.Errorf("KL = %v, err = %v", kl, err)
	}
}

func TestNewEngineFromObservationsValidation(t *testing.T) {
	if _, err := NewEngineFromObservations(nil, nil, DefaultConfig().Hybrid, nil); err == nil {
		t.Error("nil graph should error")
	}
}

// TestEngineHotSwapDuringQueries exercises the epoch-tagged model swap
// while queries run (the -race gate for SwapModel): answers must stay
// correct throughout, and post-swap results must carry the new epoch.
// The swapped-in model shares the serving model's weights, so every
// answer — old or new generation — must equal the serial baseline.
func TestEngineHotSwapDuringQueries(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.4, 1.2, 4, 51)
	if err != nil {
		t.Fatal(err)
	}
	budgets := make([]float64, len(qs))
	want := make([]float64, len(qs))
	for i, q := range qs {
		optimistic, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			t.Fatal(err)
		}
		budgets[i] = 1.35 * optimistic
		res, err := e.Route(q.Source, q.Dest, budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Prob
	}

	startEpoch := e.ModelEpoch()
	clone := e.Model().CloneForConcurrentUse()

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w + i) % len(qs)
				res, err := e.Route(qs[k].Source, qs[k].Dest, budgets[k])
				if err != nil {
					errs[w] = err
					return
				}
				if res.Prob != want[k] {
					errs[w] = fmt.Errorf("worker %d: prob %v != serial %v (epoch %d)", w, res.Prob, want[k], res.ModelEpoch)
					return
				}
				if res.ModelEpoch != startEpoch && res.ModelEpoch != startEpoch+1 {
					errs[w] = fmt.Errorf("worker %d: unexpected epoch %d", w, res.ModelEpoch)
					return
				}
			}
		}(w)
	}

	epoch, err := e.SwapModel(clone, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != startEpoch+1 {
		t.Errorf("swap returned epoch %d, want %d", epoch, startEpoch+1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if e.ModelEpoch() != epoch {
		t.Errorf("ModelEpoch = %d, want %d", e.ModelEpoch(), epoch)
	}
	if gotEpoch, at := e.LastSwap(); gotEpoch != epoch || at.IsZero() {
		t.Errorf("LastSwap = (%d, %v)", gotEpoch, at)
	}
	res, err := e.Route(qs[0].Source, qs[0].Dest, budgets[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelEpoch != epoch {
		t.Errorf("post-swap route carries epoch %d, want %d", res.ModelEpoch, epoch)
	}
	conv, est := e.DecisionCounts()
	if conv+est == 0 {
		t.Error("lifetime decision totals should survive the swap")
	}
}

func TestEngineSwapModelValidation(t *testing.T) {
	e := testEngine(t)
	if _, err := e.SwapModel(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
	orphan := &Model{}
	if _, err := e.SwapModel(orphan, nil); err == nil {
		t.Error("model without knowledge base accepted")
	}
}
