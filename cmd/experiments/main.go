// Command experiments regenerates every table of the paper's empirical
// study on the synthetic substrate (see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded outcomes).
//
// Usage:
//
//	experiments -scale medium -run all
//	experiments -scale small -run quality,efficiency
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"stochroute/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	scaleFlag := flag.String("scale", "medium", "substrate scale: small|medium|large")
	runFlag := flag.String("run", "all", "comma-separated experiments: motivating,conv,dependence,kl,quality,efficiency,ablation,anytime or all")
	quiet := flag.Bool("q", false, "suppress build progress")
	csvDir := flag.String("csv", "", "also write machine-readable tables to this directory")
	flag.Parse()

	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	needSetup := all || want["conv"] || want["dependence"] || want["kl"] ||
		want["quality"] || want["efficiency"] || want["ablation"] || want["anytime"]

	out := os.Stdout
	logW := os.Stderr
	if *quiet {
		devNull, _ := os.Open(os.DevNull)
		logW = devNull
	}

	var s *exp.Setup
	if needSetup {
		s, err = exp.Build(scale, logW)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	if all || want["motivating"] {
		if _, err := exp.RunMotivating(out); err != nil {
			log.Fatal(err)
		}
	}
	if all || want["conv"] {
		if _, err := exp.RunConvVsTruth(s, out); err != nil {
			log.Fatal(err)
		}
	}
	if all || want["dependence"] {
		if _, err := exp.RunDependence(s, 0.05, out); err != nil {
			log.Fatal(err)
		}
	}
	if all || want["kl"] {
		if err := exp.RunKLEval(s, out); err != nil {
			log.Fatal(err)
		}
	}
	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if all || want["quality"] {
		rows, err := exp.RunQuality(s, exp.DefaultQualityConfig(), out)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV("quality.csv", func(w io.Writer) error { return exp.QualityCSV(w, rows) })
	}
	if all || want["efficiency"] {
		rows, err := exp.RunEfficiency(s, out)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV("efficiency.csv", func(w io.Writer) error { return exp.EfficiencyCSV(w, rows) })
	}
	if all || want["ablation"] {
		rows, err := exp.RunAblation(s, out)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV("ablation.csv", func(w io.Writer) error { return exp.AblationCSV(w, rows) })
	}
	if all || want["anytime"] {
		points, err := exp.RunAnytimeCurve(s, out)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV("anytime.csv", func(w io.Writer) error { return exp.AnytimeCSV(w, points) })
	}
}
