// Command replay streams an SRT1 trajectory file into a running
// routing service's POST /ingest endpoint at a configurable rate — the
// way a fleet's map-matched GPS feed would arrive in production. It is
// the client half of the online-learning loop: stream enough shifted
// trajectories and the service's drift monitor fires, a background
// rebuild retrains the model, and the model epoch reported in the
// acknowledgements (and in /stats) advances.
//
//	replay -traj drifted.srt -addr http://127.0.0.1:8080 -rate 200 -batch 64
//
// Generate input with cmd/gentraj, or record and re-stream production
// trajectories. The exit status is non-zero if the stream aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"stochroute/internal/replay"
	"stochroute/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the routing service")
	trajPath := flag.String("traj", "trips.srt", "trajectory file (SRT1) to stream")
	rate := flag.Float64("rate", 100, "trajectories per second (0 = as fast as possible)")
	batch := flag.Int("batch", 64, "trajectories per POST /ingest request")
	loops := flag.Int("loops", 1, "times to stream the whole file")
	flag.Parse()

	f, err := os.Open(*trajPath)
	if err != nil {
		log.Fatal(err)
	}
	// Edge IDs and contiguity are validated server-side against the
	// serving graph, so no local graph is needed.
	trs, err := traj.ReadTrajectoryStream(f, nil)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d trajectories from %s", len(trs), *trajPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for i := 0; i < *loops; i++ {
		rep, err := replay.Stream(ctx, trs, replay.Options{
			BaseURL: *addr,
			Rate:    *rate,
			Batch:   *batch,
			LogW:    os.Stderr,
		})
		if err != nil {
			log.Fatalf("stream aborted after %d/%d trajectories: %v", rep.Sent, len(trs), err)
		}
		fmt.Printf("loop %d: sent=%d accepted=%d rejected=%d batches=%d elapsed=%s epoch %d -> %d\n",
			i+1, rep.Sent, rep.Accepted, rep.Rejected, rep.Batches,
			rep.Elapsed.Round(1e6), rep.FirstEpoch, rep.LastEpoch)
	}
}
