// Command gentraj simulates vehicle trajectories over a generated
// network using the traffic world model (the stand-in for GPS fleet
// data) and writes them in the SRT1 binary format.
//
// Usage:
//
//	gentraj -net net.srg -n 30000 -out trips.srt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stochroute/internal/graph"
	"stochroute/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gentraj: ")

	netPath := flag.String("net", "net.srg", "input network file (SRG1)")
	n := flag.Int("n", 30000, "number of trajectories")
	minEdges := flag.Int("min", 4, "minimum edges per trajectory")
	maxEdges := flag.Int("max", 30, "maximum edges per trajectory")
	depProb := flag.Float64("dep", 0.75, "probability an intersection couples adjacent edges")
	stickiness := flag.Float64("stick", 0.85, "congestion-mode carry-over probability at dependent intersections")
	noise := flag.Float64("noise", 0, "per-traversal ±1-bucket noise probability")
	congestion := flag.Float64("congestion", 1, "scale every congestion-mode multiplier (e.g. 2 = traffic twice as slow; feed the result to cmd/replay to exercise drift detection)")
	width := flag.Float64("width", 2, "travel-time grid width in seconds")
	worldSeed := flag.Uint64("world-seed", 7, "world model seed")
	walkSeed := flag.Uint64("walk-seed", 99, "trajectory sampling seed")
	out := flag.String("out", "trips.srt", "output file")
	flag.Parse()

	f, err := os.Open(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	worldCfg := traj.DefaultWorldConfig()
	worldCfg.DependentVertexProb = *depProb
	worldCfg.Stickiness = *stickiness
	worldCfg.NoiseProb = *noise
	worldCfg.BucketWidth = *width
	worldCfg.Seed = *worldSeed
	if *congestion != 1 {
		for i := range worldCfg.ModeFactors {
			worldCfg.ModeFactors[i] *= *congestion
		}
		for _, factors := range worldCfg.CategoryFactors {
			for i := range factors {
				factors[i] *= *congestion
			}
		}
	}
	world, err := traj.NewWorld(g, worldCfg)
	if err != nil {
		log.Fatal(err)
	}

	walkCfg := traj.WalkConfig{
		NumTrajectories: *n,
		MinEdges:        *minEdges,
		MaxEdges:        *maxEdges,
		Seed:            *walkSeed,
	}
	trs, err := traj.GenerateTrajectories(world, walkCfg)
	if err != nil {
		log.Fatal(err)
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := traj.WriteTrajectories(of, trs); err != nil {
		of.Close()
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	edges := 0
	for i := range trs {
		edges += len(trs[i].Edges)
	}
	fmt.Printf("wrote %s: %d trajectories, %d edge traversals (world: %.0f%% dependent pairs)\n",
		*out, len(trs), edges, 100*world.DependentPairFraction())
}
