// Command gentraj simulates vehicle trajectories over a generated
// network using the traffic world model (the stand-in for GPS fleet
// data) and writes them in the SRT2 binary format (each trip carries a
// departure timestamp; SRT1 files remain readable everywhere).
//
// Usage:
//
//	gentraj -net net.srg -n 30000 -out trips.srt
//
// With -slices k the day is partitioned into k time-of-day slices and
// each trip draws a departure; -peak s makes slice s a rush hour by
// shifting -peak-shift of the mode-prior mass onto the most congested
// mode there. -slice-weights concentrates departures (e.g. a one-hot
// vector synthesises a stream that hits only the peak slice — pair it
// with -congestion and cmd/replay to demo per-slice drift rebuilds).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"stochroute/internal/graph"
	"stochroute/internal/traj"
)

// parseWeights parses a comma-separated float list ("0,1,0,0").
func parseWeights(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("weight %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gentraj: ")

	netPath := flag.String("net", "net.srg", "input network file (SRG1)")
	n := flag.Int("n", 30000, "number of trajectories")
	minEdges := flag.Int("min", 4, "minimum edges per trajectory")
	maxEdges := flag.Int("max", 30, "maximum edges per trajectory")
	depProb := flag.Float64("dep", 0.75, "probability an intersection couples adjacent edges")
	stickiness := flag.Float64("stick", 0.85, "congestion-mode carry-over probability at dependent intersections")
	noise := flag.Float64("noise", 0, "per-traversal ±1-bucket noise probability")
	congestion := flag.Float64("congestion", 1, "scale every congestion-mode multiplier (e.g. 2 = traffic twice as slow; feed the result to cmd/replay to exercise drift detection)")
	slices := flag.Int("slices", 1, "partition the day into this many time-of-day slices (1 = time-homogeneous)")
	peak := flag.Int("peak", -1, "slice index to turn into a rush hour (-1 = none; requires -slices > 1)")
	peakShift := flag.Float64("peak-shift", 0.35, "fraction of mode-prior mass shifted onto the most congested mode in the -peak slice")
	sliceWeights := flag.String("slice-weights", "", "comma-separated departure weights per slice (default uniform; e.g. 0,1,0,0 streams only the AM peak)")
	width := flag.Float64("width", 2, "travel-time grid width in seconds")
	worldSeed := flag.Uint64("world-seed", 7, "world model seed")
	walkSeed := flag.Uint64("walk-seed", 99, "trajectory sampling seed")
	out := flag.String("out", "trips.srt", "output file")
	flag.Parse()

	f, err := os.Open(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	worldCfg := traj.DefaultWorldConfig()
	worldCfg.DependentVertexProb = *depProb
	worldCfg.Stickiness = *stickiness
	worldCfg.NoiseProb = *noise
	worldCfg.BucketWidth = *width
	worldCfg.Seed = *worldSeed
	if *congestion != 1 {
		for i := range worldCfg.ModeFactors {
			worldCfg.ModeFactors[i] *= *congestion
		}
		for _, factors := range worldCfg.CategoryFactors {
			for i := range factors {
				factors[i] *= *congestion
			}
		}
	}
	if *slices > 1 {
		priors, err := traj.PeakedSlicePriors(worldCfg.ModePrior, *slices, *peak, *peakShift)
		if err != nil {
			log.Fatal(err)
		}
		worldCfg.SlicePriors = priors
	} else if *peak >= 0 {
		log.Fatal("-peak requires -slices > 1")
	}
	world, err := traj.NewWorld(g, worldCfg)
	if err != nil {
		log.Fatal(err)
	}

	weights, err := parseWeights(*sliceWeights)
	if err != nil {
		log.Fatalf("-slice-weights: %v", err)
	}
	walkCfg := traj.WalkConfig{
		NumTrajectories: *n,
		MinEdges:        *minEdges,
		MaxEdges:        *maxEdges,
		Seed:            *walkSeed,
		Slices:          *slices,
		SliceWeights:    weights,
	}
	trs, err := traj.GenerateTrajectories(world, walkCfg)
	if err != nil {
		log.Fatal(err)
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := traj.WriteTrajectories(of, trs); err != nil {
		of.Close()
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	edges := 0
	perSlice := make([]int, traj.NumSlices(*slices))
	for i := range trs {
		edges += len(trs[i].Edges)
		perSlice[trs[i].Slice(*slices)]++
	}
	fmt.Printf("wrote %s: %d trajectories, %d edge traversals (world: %.0f%% dependent pairs)\n",
		*out, len(trs), edges, 100*world.DependentPairFraction())
	if *slices > 1 {
		fmt.Printf("departures per slice: %v (peak slice %d)\n", perSlice, *peak)
	}
}
