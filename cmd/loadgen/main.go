// Command loadgen replays a routing workload against a running serve
// instance and reports throughput and latency percentiles — the
// serving-path measurement tool.
//
// Queries are drawn from the server's own workload generator
// (/sample), so loadgen needs no local copy of the network; each
// query's budget is its optimistic travel time scaled by
// -budget-factor, mirroring the paper's query protocol.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -n 2000 -c 16 \
//	        -queries 64 -lo-km 0.5 -hi-km 2 -budget-factor 1.35
//
// With -batch k > 0 each request POSTs k randomly drawn queries to
// /route/batch instead of issuing single GET /route calls; n then
// counts batch requests, throughput is reported in both requests/s and
// queries/s, and the hit rate is per item.
//
// With -departs "t0,t1,..." (seconds since midnight) loadgen runs a
// departure sweep: requests cycle round-robin over the listed
// departures, every request carries its depart parameter, and the
// report breaks latency (p50/p99) and cache hit rate down per
// departure — the per-time-of-day-slice view of a temporally sliced
// server. Works in both single and batch mode (a batch shares one
// departure).
//
// When the server exposes /metrics, loadgen scrapes it before and
// after the run and reports the server-observed route latency
// quantiles of exactly this run (the route_latency_seconds histogram
// delta) next to the client-observed ones — the gap between the two is
// network and HTTP overhead. Every request also carries a unique
// X-Request-ID (loadgen-<i>), so a slow request in the client report
// joins to the server's slow-query log line exactly.
//
// The scrape target is -addr by default, which assumes the address
// being load-tested is the one carrying the route_latency_seconds
// histogram — true for a single serve instance, false behind
// cmd/gateway (the gateway's exposition has per-replica dispatch
// series, not the replicas' route histograms). Use -scrape-url to
// point the scrape elsewhere, e.g. at one replica:
//
//	loadgen -addr http://gateway:8080 -scrape-url http://replica1:8081
//
// When responses carry replica attribution (the X-Replica header a
// serve -replica-id instance stamps and cmd/gateway relays, or the
// per-item "replica" field in gateway batch answers), the report adds
// a per-replica split of where the requests landed — the consistent-
// hash balance over this run's key set.
//
// With -expand every request (single or batch item) asks for
// time-expanded routing (time_expanded=true): the server re-selects
// the slice model per edge from departure + accumulated mean cost.
// Time-expanded answers are never served from the route cache, so this
// mode measures raw search throughput; combine with -departs to sweep
// boundary-crossing departures.
//
// Every request carries a W3C traceparent header minted by loadgen, so
// when the server samples a request its span tree joins this client's
// trace ID. With -traces N loadgen additionally FORCES tracing of 1 in
// N requests (sampled flag set) and, after the run, fetches
// /debug/traces and prints the slowest span trees plus an aggregate
// per-phase time breakdown — where the tail latency actually went,
// phase by phase, next to the latency quantiles above it. Requires the
// server to run with -span-sample > 0.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stochroute/internal/obs"
)

type sampleQuery struct {
	Source      int     `json:"source"`
	Dest        int     `json:"dest"`
	DistKm      float64 `json:"dist_km"`
	OptimisticS float64 `json:"optimistic_s"`
}

type sampleResponse struct {
	Queries []sampleQuery `json:"queries"`
}

// outcome is one request's measurement. In batch mode a request
// carries several queries; items/itemHits count them. departIdx
// indexes the -departs sweep entry the request used (-1 = no sweep).
type outcome struct {
	latency   time.Duration
	hit       bool
	items     int
	itemHits  int
	departIdx int
	// replicas counts this request's items by answering replica
	// (X-Replica header, or the per-item attribution in gateway batch
	// answers); empty when the backend reports no identity.
	replicas map[string]int
	err      error
}

// parseDeparts parses the -departs sweep list.
func parseDeparts(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("departure %q: want a non-negative number of seconds", p)
		}
		out[i] = v
	}
	return out, nil
}

func firstError(results []outcome) error {
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	scrapeURL := flag.String("scrape-url", "", "base URL for the before/after /metrics scrape (default -addr); behind cmd/gateway point this at one replica, whose exposition carries route_latency_seconds")
	n := flag.Int("n", 1000, "total requests to send")
	c := flag.Int("c", 16, "concurrent workers")
	numQueries := flag.Int("queries", 64, "distinct queries to sample (reuse drives cache hits)")
	loKm := flag.Float64("lo-km", 0.5, "minimum query distance, km")
	hiKm := flag.Float64("hi-km", 2.0, "maximum query distance, km")
	factor := flag.Float64("budget-factor", 1.35, "budget = factor x optimistic travel time")
	anytimeMS := flag.Int("anytime-ms", 0, "use /route/anytime with this wall-clock limit (0 = full /route)")
	batch := flag.Int("batch", 0, "POST this many queries per request to /route/batch (0 = single GET /route calls)")
	departsFlag := flag.String("departs", "", "comma-separated departure sweep (seconds since midnight); reports per-departure p50/p99 and hit rate")
	expand := flag.Bool("expand", false, "request time-expanded routing (per-edge slice selection; bypasses the route cache)")
	traces := flag.Int("traces", 0, "force-trace 1 in N requests (sampled traceparent) and print the slowest span trees from /debug/traces after the run (0 disables)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if *n <= 0 || *c <= 0 || *numQueries <= 0 {
		log.Fatal("-n, -c and -queries must be positive")
	}
	if *batch > 0 && *anytimeMS > 0 {
		log.Fatal("-batch and -anytime-ms are mutually exclusive")
	}
	departs, err := parseDeparts(*departsFlag)
	if err != nil {
		log.Fatalf("-departs: %v", err)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	queries, err := fetchQueries(client, *addr, *numQueries, *loKm, *hiKm, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if len(queries) == 0 {
		log.Fatal("server returned no usable queries")
	}
	if *batch > 0 {
		log.Printf("replaying %d batch requests x %d queries over %d distinct queries with %d workers",
			*n, *batch, len(queries), *c)
	} else {
		log.Printf("replaying %d requests over %d distinct queries with %d workers", *n, len(queries), *c)
	}

	// Scrape the server's own latency histogram around the run: the
	// delta isolates exactly this run's requests, so the report can put
	// server-observed quantiles (handler wall clock, no network) next to
	// the client-observed ones. A failed scrape (e.g. -metrics=false)
	// just drops that section.
	scrapeBase := *scrapeURL
	if scrapeBase == "" {
		scrapeBase = *addr
	}
	before, scrapeErr := scrapeMetrics(client, scrapeBase)

	results := make([]outcome, *n)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				// Departure sweep: requests cycle round-robin over the
				// listed departures so every slice sees equal load.
				departIdx := -1
				depart := 0.0
				if len(departs) > 0 {
					departIdx = i % len(departs)
					depart = departs[departIdx]
				}
				// Every request carries a unique X-Request-ID, echoed by
				// the server and stamped on its slow-query log lines, so a
				// slow request seen here joins to the server's trace. It
				// also carries a client-minted traceparent; the sampled
				// flag on 1 in -traces requests forces a server span tree.
				rid := fmt.Sprintf("loadgen-%d", i)
				sampled := *traces > 0 && i%*traces == 0
				tp := obs.FormatTraceparent(obs.NewTraceID(), fmt.Sprintf("%016x", uint64(i)+1), sampled)
				if *batch > 0 {
					t0 := time.Now()
					items, itemHits, reps, err := fireBatch(client, *addr, queries, rng, *batch, *factor, depart, *expand, rid, tp)
					results[i] = outcome{latency: time.Since(t0), items: items, itemHits: itemHits, departIdx: departIdx, replicas: reps, err: err}
					continue
				}
				q := queries[rng.Intn(len(queries))]
				budget := q.OptimisticS * *factor
				url := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.3f", *addr, q.Source, q.Dest, budget)
				if *anytimeMS > 0 {
					url = fmt.Sprintf("%s/route/anytime?source=%d&dest=%d&budget=%.3f&limit_ms=%d",
						*addr, q.Source, q.Dest, budget, *anytimeMS)
				}
				if departIdx >= 0 {
					url += fmt.Sprintf("&depart=%.0f", depart)
				}
				if *expand {
					url += "&time_expanded=true"
				}
				t0 := time.Now()
				hit, replica, err := fire(client, url, rid, tp)
				var reps map[string]int
				if replica != "" {
					reps = map[string]int{replica: 1}
				}
				results[i] = outcome{latency: time.Since(t0), hit: hit, items: 1, departIdx: departIdx, replicas: reps, err: err}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	hits, itemHits, items, errs := 0, 0, 0, 0
	for _, r := range results {
		if r.err != nil {
			errs++
			continue
		}
		latencies = append(latencies, r.latency)
		items += r.items
		itemHits += r.itemHits
		if r.hit {
			hits++
		}
	}
	if len(latencies) == 0 {
		log.Fatalf("all %d requests failed; first error: %v", errs, firstError(results))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })

	ok := len(latencies)
	fmt.Printf("requests     %d ok, %d failed in %v\n", ok, errs, elapsed.Round(time.Millisecond))
	if *batch > 0 {
		fmt.Printf("throughput   %.1f req/s, %.1f queries/s\n",
			float64(ok)/elapsed.Seconds(), float64(items)/elapsed.Seconds())
		fmt.Printf("cache hits   %d of %d queries (%.1f%%)\n",
			itemHits, items, 100*float64(itemHits)/float64(items))
	} else {
		fmt.Printf("throughput   %.1f req/s\n", float64(ok)/elapsed.Seconds())
		fmt.Printf("cache hits   %d (%.1f%%)\n", hits, 100*float64(hits)/float64(ok))
	}
	fmt.Printf("latency      p50=%v p90=%v p99=%v max=%v\n",
		percentile(latencies, 0.50).Round(time.Microsecond),
		percentile(latencies, 0.90).Round(time.Microsecond),
		percentile(latencies, 0.99).Round(time.Microsecond),
		latencies[ok-1].Round(time.Microsecond))
	reportReplicaSplit(results)
	reportServerLatency(client, scrapeBase, before, scrapeErr)
	if len(departs) > 0 {
		reportDepartSweep(departs, results)
	}
	if *traces > 0 {
		reportTraces(client, *addr)
	}
	if errs > 0 {
		log.Printf("first error: %v", firstError(results))
	}
}

// traceSpan / traceEntry mirror the server's /debug/traces rendering
// (internal/server/traces.go).
type traceSpan struct {
	Name       string       `json:"name"`
	StartMS    float64      `json:"start_ms"`
	DurationMS float64      `json:"duration_ms"`
	Error      string       `json:"error"`
	Children   []*traceSpan `json:"children"`
}

type traceEntry struct {
	TraceID    string     `json:"trace_id"`
	RequestID  string     `json:"request_id"`
	Endpoint   string     `json:"endpoint"`
	DurationMS float64    `json:"duration_ms"`
	Root       *traceSpan `json:"root"`
}

// reportTraces fetches the span trees the server recorded for this run
// and prints (a) an aggregate per-phase breakdown — total and mean time
// per span name across every retained trace, the "where does a request
// spend its time" table — and (b) the slowest individual trees as
// waterfalls. Requires serve -span-sample; a 404 just notes that.
func reportTraces(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/debug/traces?n=256")
	if err != nil {
		log.Printf("span trees unavailable (/debug/traces: %v)", err)
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("span trees unavailable (/debug/traces: %v)", err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		log.Printf("span trees unavailable (/debug/traces: %s; run serve with -span-sample > 0)", resp.Status)
		return
	}
	var tr struct {
		Traces []traceEntry `json:"traces"`
	}
	if err := json.Unmarshal(payload, &tr); err != nil {
		log.Printf("span trees unavailable (/debug/traces: %v)", err)
		return
	}
	if len(tr.Traces) == 0 {
		log.Print("span trees unavailable (server retained no traces)")
		return
	}

	// Phase breakdown: flatten every tree, accumulate per span name.
	type phase struct {
		count int
		total float64
	}
	phases := map[string]*phase{}
	var walk func(s *traceSpan)
	walk = func(s *traceSpan) {
		if s == nil {
			return
		}
		p := phases[s.Name]
		if p == nil {
			p = &phase{}
			phases[s.Name] = p
		}
		p.count++
		p.total += s.DurationMS
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, t := range tr.Traces {
		walk(t.Root)
	}
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return phases[names[i]].total > phases[names[j]].total })
	fmt.Printf("phase breakdown over %d sampled traces:\n", len(tr.Traces))
	for _, n := range names {
		p := phases[n]
		fmt.Printf("  %-14s %6d spans  total %9.3fms  mean %8.3fms\n",
			n, p.count, p.total, p.total/float64(p.count))
	}
	// The potentials phase is the per-query preprocessing ALT landmark
	// tables amortise away (serve -landmarks); its share of search time
	// is the headroom that switch would reclaim.
	if pot, ok := phases["potentials"]; ok {
		if search, ok := phases["search"]; ok && search.total > 0 {
			fmt.Printf("  potentials phase: %.1f%% of search time (serve -landmarks trades it for precomputed ALT tables)\n",
				100*pot.total/search.total)
		}
	}

	sort.Slice(tr.Traces, func(i, j int) bool { return tr.Traces[i].DurationMS > tr.Traces[j].DurationMS })
	top := 3
	if len(tr.Traces) < top {
		top = len(tr.Traces)
	}
	fmt.Printf("slowest traces:\n")
	for _, t := range tr.Traces[:top] {
		fmt.Printf("  %s %.3fms (request %s, trace %s)\n",
			t.Endpoint, t.DurationMS, t.RequestID, t.TraceID)
		printSpanTree(t.Root, "    ")
	}
}

// printSpanTree renders one span subtree as an indented waterfall.
func printSpanTree(s *traceSpan, indent string) {
	if s == nil {
		return
	}
	line := fmt.Sprintf("%s%-14s +%.3fms %.3fms", indent, s.Name, s.StartMS, s.DurationMS)
	if s.Error != "" {
		line += " ERROR: " + s.Error
	}
	fmt.Println(line)
	for _, c := range s.Children {
		printSpanTree(c, indent+"  ")
	}
}

// reportReplicaSplit prints where this run's queries landed, by
// replica identity, when the backend attributed its answers — the
// observed consistent-hash balance behind cmd/gateway, or a single
// line for a lone serve -replica-id instance. Silent when no response
// carried an identity.
func reportReplicaSplit(results []outcome) {
	split := map[string]int{}
	total := 0
	for _, r := range results {
		if r.err != nil {
			continue
		}
		for id, n := range r.replicas {
			split[id] += n
			total += n
		}
	}
	if total == 0 {
		return
	}
	ids := make([]string, 0, len(split))
	for id := range split {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%d (%.1f%%)", id, split[id], 100*float64(split[id])/float64(total))
	}
	fmt.Printf("replica split %s over %d attributed queries\n", strings.Join(parts, ", "), total)
}

// reportDepartSweep prints the per-departure breakdown: p50/p99
// latency and cache hit rate per swept departure — one line per
// time-of-day slice the server partitions the day into.
func reportDepartSweep(departs []float64, results []outcome) {
	fmt.Printf("departure sweep:\n")
	for d, depart := range departs {
		var lat []time.Duration
		items, hits := 0, 0
		for _, r := range results {
			if r.err != nil || r.departIdx != d {
				continue
			}
			lat = append(lat, r.latency)
			items += r.items
			hits += r.itemHits
			if r.hit {
				hits++
			}
		}
		if len(lat) == 0 {
			fmt.Printf("  depart %6.0fs: no successful requests\n", depart)
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("  depart %6.0fs: %5d req  p50=%v p99=%v  hits %d/%d (%.1f%%)\n",
			depart, len(lat),
			percentile(lat, 0.50).Round(time.Microsecond),
			percentile(lat, 0.99).Round(time.Microsecond),
			hits, items, 100*float64(hits)/float64(items))
	}
}

// scrapeMetrics fetches and parses one /metrics exposition.
func scrapeMetrics(client *http.Client, addr string) ([]obs.Sample, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// reportServerLatency scrapes /metrics again and prints the
// server-observed route latency quantiles of exactly this run (the
// route_latency_seconds delta across the two scrapes), beside the
// client-observed numbers above it. The gap between the two is
// network + HTTP overhead; a large gap with healthy server quantiles
// points the investigation away from the routing kernel.
func reportServerLatency(client *http.Client, addr string, before []obs.Sample, scrapeErr error) {
	if scrapeErr != nil {
		log.Printf("server-side latency unavailable (pre-run scrape: %v)", scrapeErr)
		return
	}
	after, err := scrapeMetrics(client, addr)
	if err != nil {
		log.Printf("server-side latency unavailable (post-run scrape: %v)", err)
		return
	}
	bounds, cum, total := obs.HistogramDelta(before, after, "route_latency_seconds")
	if total == 0 {
		log.Print("server-side latency unavailable (no route_latency_seconds movement)")
		return
	}
	toDur := func(q float64) time.Duration {
		return time.Duration(obs.Quantile(bounds, cum, q) * float64(time.Second))
	}
	fmt.Printf("server-side  p50=%v p90=%v p99=%v over %d route requests (/metrics delta)\n",
		toDur(0.50).Round(time.Microsecond),
		toDur(0.90).Round(time.Microsecond),
		toDur(0.99).Round(time.Microsecond),
		total)
}

// batchQuery is one item of a /route/batch request body, mirroring the
// server's schema.
type batchQuery struct {
	Source       int     `json:"source"`
	Dest         int     `json:"dest"`
	Budget       float64 `json:"budget_s"`
	Depart       float64 `json:"depart_s,omitempty"`
	TimeExpanded bool    `json:"time_expanded,omitempty"`
}

// fireBatch POSTs k randomly drawn queries to /route/batch (all
// departing at depart, time-expanded when expand is set) and reports
// the item count, per-item cache hits and the per-replica attribution
// of the items (gateway answers carry it; a plain serve instance's
// items have none).
func fireBatch(client *http.Client, addr string, queries []sampleQuery, rng *rand.Rand, k int, factor, depart float64, expand bool, rid, tp string) (items, itemHits int, replicas map[string]int, err error) {
	req := struct {
		Queries []batchQuery `json:"queries"`
	}{Queries: make([]batchQuery, k)}
	for i := range req.Queries {
		q := queries[rng.Intn(len(queries))]
		req.Queries[i] = batchQuery{Source: q.Source, Dest: q.Dest, Budget: q.OptimisticS * factor, Depart: depart, TimeExpanded: expand}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, addr+"/route/batch", bytes.NewReader(body))
	if err != nil {
		return 0, 0, nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-ID", rid)
	httpReq.Header.Set("traceparent", tp)
	resp, err := client.Do(httpReq)
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, nil, fmt.Errorf("/route/batch: %s: %s", resp.Status, payload)
	}
	var br struct {
		Results []struct {
			Replica string `json:"replica"`
		} `json:"results"`
		CacheHits int `json:"cache_hits"`
	}
	if err := json.Unmarshal(payload, &br); err != nil {
		return 0, 0, nil, fmt.Errorf("/route/batch: %w", err)
	}
	for _, r := range br.Results {
		if r.Replica == "" {
			continue
		}
		if replicas == nil {
			replicas = make(map[string]int)
		}
		replicas[r.Replica]++
	}
	return len(br.Results), br.CacheHits, replicas, nil
}

func fetchQueries(client *http.Client, addr string, n int, loKm, hiKm float64, seed int64) ([]sampleQuery, error) {
	url := fmt.Sprintf("%s/sample?n=%d&lo_km=%g&hi_km=%g&seed=%d", addr, n, loKm, hiKm, seed)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sample: %s: %s", resp.Status, body)
	}
	var sr sampleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("sample: %w", err)
	}
	return sr.Queries, nil
}

// fire issues one request, fully draining the body so connections are
// reused, and reports whether the answer came from the server cache
// and which replica answered (empty without fleet identity).
func fire(client *http.Client, url, rid, tp string) (hit bool, replica string, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return false, "", err
	}
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("traceparent", tp)
	resp, err := client.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return false, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return false, "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return resp.Header.Get("X-Cache") == "hit", resp.Header.Get("X-Replica"), nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
