// Command loadgen replays a routing workload against a running serve
// instance and reports throughput and latency percentiles — the
// serving-path measurement tool.
//
// Queries are drawn from the server's own workload generator
// (/sample), so loadgen needs no local copy of the network; each
// query's budget is its optimistic travel time scaled by
// -budget-factor, mirroring the paper's query protocol.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -n 2000 -c 16 \
//	        -queries 64 -lo-km 0.5 -hi-km 2 -budget-factor 1.35
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type sampleQuery struct {
	Source      int     `json:"source"`
	Dest        int     `json:"dest"`
	DistKm      float64 `json:"dist_km"`
	OptimisticS float64 `json:"optimistic_s"`
}

type sampleResponse struct {
	Queries []sampleQuery `json:"queries"`
}

// outcome is one request's measurement.
type outcome struct {
	latency time.Duration
	hit     bool
	err     error
}

func firstError(results []outcome) error {
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	n := flag.Int("n", 1000, "total requests to send")
	c := flag.Int("c", 16, "concurrent workers")
	numQueries := flag.Int("queries", 64, "distinct queries to sample (reuse drives cache hits)")
	loKm := flag.Float64("lo-km", 0.5, "minimum query distance, km")
	hiKm := flag.Float64("hi-km", 2.0, "maximum query distance, km")
	factor := flag.Float64("budget-factor", 1.35, "budget = factor x optimistic travel time")
	anytimeMS := flag.Int("anytime-ms", 0, "use /route/anytime with this wall-clock limit (0 = full /route)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if *n <= 0 || *c <= 0 || *numQueries <= 0 {
		log.Fatal("-n, -c and -queries must be positive")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	queries, err := fetchQueries(client, *addr, *numQueries, *loKm, *hiKm, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if len(queries) == 0 {
		log.Fatal("server returned no usable queries")
	}
	log.Printf("replaying %d requests over %d distinct queries with %d workers", *n, len(queries), *c)

	results := make([]outcome, *n)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				q := queries[rng.Intn(len(queries))]
				budget := q.OptimisticS * *factor
				url := fmt.Sprintf("%s/route?source=%d&dest=%d&budget=%.3f", *addr, q.Source, q.Dest, budget)
				if *anytimeMS > 0 {
					url = fmt.Sprintf("%s/route/anytime?source=%d&dest=%d&budget=%.3f&limit_ms=%d",
						*addr, q.Source, q.Dest, budget, *anytimeMS)
				}
				t0 := time.Now()
				hit, err := fire(client, url)
				results[i] = outcome{latency: time.Since(t0), hit: hit, err: err}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	hits, errs := 0, 0
	for _, r := range results {
		if r.err != nil {
			errs++
			continue
		}
		latencies = append(latencies, r.latency)
		if r.hit {
			hits++
		}
	}
	if len(latencies) == 0 {
		log.Fatalf("all %d requests failed; first error: %v", errs, firstError(results))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })

	ok := len(latencies)
	fmt.Printf("requests     %d ok, %d failed in %v\n", ok, errs, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput   %.1f req/s\n", float64(ok)/elapsed.Seconds())
	fmt.Printf("cache hits   %d (%.1f%%)\n", hits, 100*float64(hits)/float64(ok))
	fmt.Printf("latency      p50=%v p90=%v p99=%v max=%v\n",
		percentile(latencies, 0.50).Round(time.Microsecond),
		percentile(latencies, 0.90).Round(time.Microsecond),
		percentile(latencies, 0.99).Round(time.Microsecond),
		latencies[ok-1].Round(time.Microsecond))
	if errs > 0 {
		log.Printf("first error: %v", firstError(results))
	}
}

func fetchQueries(client *http.Client, addr string, n int, loKm, hiKm float64, seed int64) ([]sampleQuery, error) {
	url := fmt.Sprintf("%s/sample?n=%d&lo_km=%g&hi_km=%g&seed=%d", addr, n, loKm, hiKm, seed)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sample: %s: %s", resp.Status, body)
	}
	var sr sampleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("sample: %w", err)
	}
	return sr.Queries, nil
}

// fire issues one request, fully draining the body so connections are
// reused, and reports whether the answer came from the server cache.
func fire(client *http.Client, url string) (hit bool, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return resp.Header.Get("X-Cache") == "hit", nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
