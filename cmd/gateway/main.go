// Command gateway fronts a fleet of cmd/serve replicas with one HTTP
// address: consistent-hash routing of query endpoints so each
// replica's cache stays hot for its key range, health-probed failover
// when a replica dies (and automatic range reclamation when it
// returns), fan-out of POST /ingest to every replica's drift monitor,
// and scatter/gather for POST /route/batch.
//
// A three-replica fleet, each started as
//
//	serve -synthetic -addr :8081 -replica-id r1
//	serve -synthetic -addr :8082 -replica-id r2
//	serve -synthetic -addr :8083 -replica-id r3
//
// is fronted by
//
//	gateway -addr :8080 -replicas r1=http://localhost:8081,r2=http://localhost:8082,r3=http://localhost:8083
//
// after which clients use the gateway address exactly as they would a
// single serve instance — every query response additionally carries an
// X-Replica header naming the replica that answered.
//
// Note the replicas above each train their own synthetic model; for a
// fleet that answers bit-identically, train once with cmd/train and
// point every replica at the same artifacts.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stochroute/internal/gateway"
	"stochroute/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "fleet as comma-separated id=url pairs, e.g. r1=http://localhost:8081,r2=http://localhost:8082 (required); ids must match each replica's -replica-id")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the consistent-hash ring")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "health-probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	downAfter := flag.Int("down-after", 2, "consecutive probe failures before a replica is marked down (request-path transport failures mark it down immediately)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-dispatch timeout")
	ingestQueue := flag.Int("ingest-queue", 256, "per-replica ingest fan-out queue depth in batches (also byte-bounded by -ingest-queue-bytes)")
	ingestQueueBytes := flag.Int64("ingest-queue-bytes", 64<<20, "per-replica byte cap across queued ingest bodies; replicas × this value is the gateway's worst-case ingest memory while a replica is down")
	ingestAttempts := flag.Int("ingest-attempts", 10, "delivery attempts per ingest batch before it is dropped for that replica")
	metricsOn := flag.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics")
	spanSample := flag.Int("span-sample", 0, "record a span tree for 1 in N requests on GET /debug/traces (0 disables; sampled traceparent headers always trace)")
	traceStore := flag.Int("trace-store", 256, "completed traces retained for /debug/traces")
	flag.Parse()

	fleet, err := parseReplicas(*replicas)
	if err != nil {
		log.Fatalf("-replicas: %v", err)
	}

	var tracer *obs.Tracer
	if *spanSample > 0 {
		tracer = obs.NewTracer(obs.NewSpanStore(*traceStore, 0), *spanSample)
	}

	gw, err := gateway.New(gateway.Config{
		Replicas:         fleet,
		VNodes:           *vnodes,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTimeout,
		DownAfter:        *downAfter,
		RequestTimeout:   *timeout,
		IngestQueue:      *ingestQueue,
		IngestQueueBytes: *ingestQueueBytes,
		IngestAttempts:   *ingestAttempts,
		DisableMetrics:   !*metricsOn,
		Tracer:           tracer,
		LogW:             os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("gateway: fronting %d replicas on %s (%d vnodes each, probe every %v)",
		len(fleet), *addr, *vnodes, *probeEvery)
	if err := gw.Serve(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("gateway: shut down")
}

// parseReplicas decodes the -replicas flag: comma-separated id=url
// pairs, order defining the fleet's stable metric/ring order.
func parseReplicas(s string) ([]gateway.Replica, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errEmptyFleet
	}
	var out []gateway.Replica
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, badPairError(part)
		}
		out = append(out, gateway.Replica{ID: id, URL: url})
	}
	if len(out) == 0 {
		return nil, errEmptyFleet
	}
	return out, nil
}

type parseError string

func (e parseError) Error() string { return string(e) }

const errEmptyFleet = parseError("at least one id=url pair is required")

func badPairError(part string) error {
	return parseError("malformed pair " + part + " (want id=url)")
}
