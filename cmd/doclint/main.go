// Command doclint is the repository's documentation gate: it fails
// (exit 1) when any exported identifier in the given packages lacks a
// doc comment, listing every offender as file:line. CI runs it over
// the packages whose exported surface is a contract for contributors
// (internal/traj, internal/routing, internal/hybrid); run it locally
// the same way:
//
//	go run ./cmd/doclint internal/traj internal/routing internal/hybrid
//
// The rules mirror `revive`'s exported check, without the dependency:
//
//   - exported top-level funcs, types, consts and vars need a doc
//     comment;
//   - methods need one when both the method and its receiver type are
//     exported (methods of unexported types are not public surface);
//   - a const/var/type block's doc comment covers every spec in the
//     block, and a per-spec comment covers that spec;
//   - _test.go files are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint <package-dir> [package-dir...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var problems []string
	for _, dir := range flag.Args() {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers lack doc comments\n", len(problems))
		os.Exit(1)
	}
}

// lintDir reports every undocumented exported identifier in one
// package directory (non-recursive, tests excluded).
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc != nil || !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil {
						recv := receiverName(d.Recv)
						if !ast.IsExported(recv) {
							continue
						}
						report(d.Pos(), "method", recv+"."+d.Name.Name)
						continue
					}
					report(d.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // block doc covers every spec
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									kind := "var"
									if d.Tok == token.CONST {
										kind = "const"
									}
									report(name.Pos(), kind, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// receiverName extracts the receiver's type name, unwrapping pointers
// and generic instantiations.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
