// Command train fits the Hybrid Model (distribution estimator +
// convolve-vs-estimate classifier) from a network and trajectory file,
// reports the paper's KL-divergence evaluation on held-out pairs, and
// writes the model in the SRHM binary format.
//
// Usage:
//
//	train -net net.srg -traj trips.srt -out model.srhm
//
// With -slices k one model is trained per time-of-day slice on that
// slice's trajectories (bucketed by departure timestamp) and the
// output is a multi-slice SRH2 model set; cmd/serve and cmd/route load
// either format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"stochroute/internal/graph"
	"stochroute/internal/hybrid"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")

	netPath := flag.String("net", "net.srg", "input network file (SRG1)")
	trajPath := flag.String("traj", "trips.srt", "input trajectory file (SRT1)")
	out := flag.String("out", "model.srhm", "output model file")
	trainPairs := flag.Int("train-pairs", 4000, "training edge pairs (paper: 4000)")
	testPairs := flag.Int("test-pairs", 1000, "held-out test edge pairs (paper: 1000)")
	minObs := flag.Int("min-obs", 20, "minimum joint observations for a pair to count as having data")
	width := flag.Float64("width", 2, "histogram grid width in seconds")
	epochs := flag.Int("epochs", 120, "estimator training epochs")
	slices := flag.Int("slices", 1, "time-of-day slices: train one model per slice (1 = single time-homogeneous model)")
	landmarks := flag.Int("landmarks", 0, "dry-run ALT landmark preprocessing after training and report its cost (what cmd/serve -landmarks=N will pay per model generation; 0 skips)")
	verbose := flag.Bool("v", false, "log training progress")
	flag.Parse()

	f, err := os.Open(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	tf, err := os.Open(*trajPath)
	if err != nil {
		log.Fatal(err)
	}
	trs, err := traj.ReadTrajectoryStream(tf, g)
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	cfg := hybrid.DefaultConfig()
	cfg.Width = *width
	cfg.TrainPairs = *trainPairs
	cfg.TestPairs = *testPairs
	cfg.MinPairObs = *minObs
	cfg.Estimator.Train.Epochs = *epochs
	cfg.Estimator.Train.Verbose = *verbose
	cfg.Slices = *slices
	if *verbose {
		cfg.Estimator.Train.Logf = log.Printf
	}

	k := traj.NumSlices(*slices)
	obs := traj.NewSlicedObservations(g, *width, k)
	obs.Collect(trs)
	bySlice := traj.SplitBySlice(trs, k)

	set, reports, err := hybrid.TrainSlices(g, obs, bySlice, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for s, report := range reports {
		if k > 1 {
			fmt.Printf("slice %d: %d trajectories, %d pairs with >= %d observations\n",
				s, len(bySlice[s]), set.At(s).KB.NumPairs(), cfg.MinPairObs)
		} else {
			fmt.Printf("knowledge base: %d pairs with >= %d observations\n", set.At(s).KB.NumPairs(), cfg.MinPairObs)
		}
		fmt.Printf("evaluation on %d held-out pairs (ground truth: empirical joint distributions):\n", report.TestPairs)
		fmt.Printf("  KL(hybrid)        = %.4f\n", report.MeanKLHybrid)
		fmt.Printf("  KL(convolution)   = %.4f\n", report.MeanKLConv)
		fmt.Printf("  KL(estimate-only) = %.4f\n", report.MeanKLEstimate)
		fmt.Printf("  classifier accuracy %.3f, F1 %.3f, AUC %.3f\n",
			report.ClassifierConfusion.Accuracy(), report.ClassifierConfusion.F1(), report.ClassifierAUC)
	}

	// ALT preprocessing dry run: build the same landmark tables
	// cmd/serve -landmarks would build for this model set and report
	// what each generation swap will cost in wall clock and memory. The
	// tables themselves are serve-time state and are not written to the
	// model file.
	if *landmarks > 0 {
		lms := routing.SelectLandmarks(g, nil, *landmarks)
		total := time.Duration(0)
		var bytes int64
		for s := 0; s < set.K(); s++ {
			t0 := time.Now()
			alt, err := routing.BuildALT(g, set.At(s).MinEdgeTime, lms)
			if err != nil {
				log.Fatal(err)
			}
			d := time.Since(t0)
			total += d
			bytes += alt.TableBytes()
			fmt.Printf("alt: slice %d tables: %d landmarks in %v (%.1f MB)\n",
				s, len(lms), d.Round(time.Millisecond), float64(alt.TableBytes())/(1<<20))
		}
		if set.K() > 1 {
			t0 := time.Now()
			alt, err := routing.BuildALT(g, set.MinEdgeTimeAcrossSlices, lms)
			if err != nil {
				log.Fatal(err)
			}
			d := time.Since(t0)
			total += d
			bytes += alt.TableBytes()
			fmt.Printf("alt: min-across-slices tables: %v (%.1f MB)\n", d.Round(time.Millisecond), float64(alt.TableBytes())/(1<<20))
		}
		fmt.Printf("alt: total preprocessing %v, %.1f MB resident — paid once per model generation at serve time\n",
			total.Round(time.Millisecond), float64(bytes)/(1<<20))
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := hybrid.WriteModelSet(of, set); err != nil {
		of.Close()
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d slice(s))\n", *out, set.K())
}
