// Command route answers a single Probabilistic Budget Routing query on a
// trained model: given a source, destination and time budget, it prints
// the path maximising the probability of on-time arrival, alongside the
// mean-cost baseline for contrast.
//
// Usage:
//
//	route -net net.srg -traj trips.srt -model model.srhm \
//	      -from 57.01,9.92 -to 57.05,9.97 -budget 600 -limit 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"stochroute/internal/geo"
	"stochroute/internal/graph"
	"stochroute/internal/hybrid"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

// summariseSlices compresses a per-edge slice sequence into run-length
// form ("slice 2 x14 -> slice 3 x9") for display.
func summariseSlices(seq []int) string {
	var b strings.Builder
	for i := 0; i < len(seq); {
		j := i
		for j < len(seq) && seq[j] == seq[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "slice %d x%d", seq[i], j-i)
		i = j
	}
	return b.String()
}

func parseLatLon(s string) (geo.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geo.Point{}, fmt.Errorf("want lat,lon, got %q", s)
	}
	lat, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geo.Point{}, err
	}
	lon, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geo.Point{}, err
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return geo.Point{}, fmt.Errorf("invalid coordinate %v", p)
	}
	return p, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("route: ")

	netPath := flag.String("net", "net.srg", "network file (SRG1)")
	trajPath := flag.String("traj", "trips.srt", "trajectory file (SRT1), used to rebuild edge statistics")
	modelPath := flag.String("model", "model.srhm", "trained model file (SRHM)")
	from := flag.String("from", "", "source as lat,lon")
	to := flag.String("to", "", "destination as lat,lon")
	budget := flag.Float64("budget", 600, "time budget in seconds")
	depart := flag.Float64("depart", 0, "departure time in seconds since midnight (selects the time-of-day slice of a sliced model)")
	expand := flag.Bool("expand", false, "time-expanded routing: re-select the slice model per edge from departure + accumulated mean cost (long trips cross slice boundaries mid-search)")
	limit := flag.Duration("limit", 0, "anytime wall-clock limit (0 = run to optimality)")
	width := flag.Float64("width", 2, "histogram grid width in seconds")
	minObs := flag.Int("min-obs", 20, "minimum pair observations")
	flag.Parse()

	if *from == "" || *to == "" {
		log.Fatal("both -from and -to are required (lat,lon)")
	}
	src, err := parseLatLon(*from)
	if err != nil {
		log.Fatalf("-from: %v", err)
	}
	dst, err := parseLatLon(*to)
	if err != nil {
		log.Fatalf("-to: %v", err)
	}

	f, err := os.Open(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	tf, err := os.Open(*trajPath)
	if err != nil {
		log.Fatal(err)
	}
	trs, err := traj.ReadTrajectoryStream(tf, g)
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	set, err := hybrid.ReadModelSet(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}
	// The departure picks the serving slice; only that slice's
	// knowledge base is rebuilt (from the trips departing in it) —
	// unless the search is time-expanded, in which case any slice may
	// serve an edge and every slice's knowledge base is needed.
	slice := set.SliceOf(*depart)
	obs := traj.NewSlicedObservations(g, *width, set.K())
	obs.Collect(trs)
	rebuild := []int{slice}
	if *expand {
		rebuild = rebuild[:0]
		for s := 0; s < set.K(); s++ {
			rebuild = append(rebuild, s)
		}
	}
	for _, s := range rebuild {
		kb, err := hybrid.BuildKnowledgeBase(g, obs.Slice(s), *width, *minObs)
		if err != nil {
			log.Fatal(err)
		}
		if err := set.At(s).AttachKB(kb); err != nil {
			log.Fatal(err)
		}
	}
	model := set.At(slice)
	kb := model.KB
	if set.K() > 1 {
		fmt.Printf("departure %.0fs -> time slice %d of %d\n", *depart, slice, set.K())
	}

	idx := graph.NewGridIndex(g, 500)
	s := idx.Nearest(src)
	d := idx.Nearest(dst)
	fmt.Printf("source %v -> vertex %d %v\n", src, s, g.Point(s))
	fmt.Printf("dest   %v -> vertex %d %v\n", dst, d, g.Point(d))

	var coster hybrid.Coster = model
	if *expand {
		coster = set.TimeExpandedCoster(*depart, nil)
	}
	res, err := routing.PBR(g, coster, s, d, routing.Options{
		Budget:       *budget,
		Departure:    *depart,
		TimeExpanded: *expand,
		MaxDuration:  *limit,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no path found within the budget")
	}
	fmt.Printf("\nbudget routing (t = %.0fs):\n", *budget)
	fmt.Printf("  P(on time) = %.3f   edges = %d   mean = %.0fs\n",
		res.Prob, len(res.Path), res.Dist.Mean())
	fmt.Printf("  expansions = %d, labels = %d, runtime = %v, complete = %v\n",
		res.Expansions, res.GeneratedLabels, res.Runtime.Round(time.Millisecond), res.Complete)
	if len(res.SliceSeq) > 0 {
		fmt.Printf("  slice sequence = %v\n", summariseSlices(res.SliceSeq))
	}

	basePath, baseMean, err := routing.MeanCostPath(g, kb, s, d)
	if err == nil {
		baseDist, err := hybrid.PathCost(model, basePath)
		if err == nil {
			fmt.Printf("\nmean-cost baseline:\n")
			fmt.Printf("  P(on time) = %.3f   edges = %d   mean = %.0fs\n",
				baseDist.ProbWithinBudget(*budget), len(basePath), baseMean)
		}
	}
}
