// Command serve runs the concurrent routing service: an HTTP/JSON API
// (see internal/server) answering Probabilistic Budget Routing queries
// over a loaded network and trained hybrid model.
//
// Serve either loads the artifacts produced by cmd/gennet, cmd/gentraj
// and cmd/train:
//
//	serve -net net.srg -traj trips.srt -model model.srhm -addr :8080
//
// or, for a self-contained demo, generates a synthetic city and trains
// a model in-process:
//
//	serve -synthetic -rows 20 -cols 20 -addr :8080
//
// SIGINT/SIGTERM shut the server down gracefully, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stochroute"
	"stochroute/internal/graph"
	"stochroute/internal/hybrid"
	"stochroute/internal/server"
	"stochroute/internal/traj"
)

// The engine is the server's backend; keep the contract checked here,
// where the two meet.
var _ server.Backend = (*stochroute.Engine)(nil)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	netPath := flag.String("net", "net.srg", "network file (SRG1)")
	trajPath := flag.String("traj", "trips.srt", "trajectory file (SRT1), used to rebuild edge statistics")
	modelPath := flag.String("model", "model.srhm", "trained model file (SRHM)")
	width := flag.Float64("width", 2, "histogram grid width in seconds")
	minObs := flag.Int("min-obs", 20, "minimum pair observations")

	synthetic := flag.Bool("synthetic", false, "generate a synthetic city and train in-process instead of loading artifacts")
	rows := flag.Int("rows", 20, "synthetic grid rows")
	cols := flag.Int("cols", 20, "synthetic grid columns")
	trajs := flag.Int("trajs", 3000, "synthetic training trajectories")

	timeout := flag.Duration("timeout", 10*time.Second, "per-request search timeout")
	routeCache := flag.Int("route-cache", 4096, "route cache entries (negative disables)")
	pairCache := flag.Int("pair-cache", 16384, "pair-sum cache entries (negative disables)")
	shards := flag.Int("cache-shards", 16, "cache lock shards")
	bucket := flag.Float64("budget-bucket", 15, "route cache budget bucket in seconds (0 = exact budgets)")
	flag.Parse()

	var (
		eng *stochroute.Engine
		err error
	)
	if *synthetic {
		cfg := stochroute.DefaultConfig()
		cfg.Network.Rows, cfg.Network.Cols = *rows, *cols
		cfg.Walk.NumTrajectories = *trajs
		log.Printf("building synthetic %dx%d engine (this trains a model; use artifact flags in production)", *rows, *cols)
		eng, err = stochroute.BuildEngine(cfg, os.Stderr)
	} else {
		eng, err = loadEngine(*netPath, *trajPath, *modelPath, *width, *minObs)
	}
	if err != nil {
		log.Fatal(err)
	}
	g := eng.Graph()
	log.Printf("engine ready: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	srv := server.New(eng, server.Config{
		RequestTimeout:      *timeout,
		RouteCache:          *routeCache,
		PairCache:           *pairCache,
		CacheShards:         *shards,
		BudgetBucketSeconds: *bucket,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("listening on %s", *addr)
	if err := srv.Serve(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// loadEngine assembles an engine from saved artifacts: the network, the
// trajectories (to rebuild the knowledge base the model binds to) and
// the trained model. Nothing is retrained.
func loadEngine(netPath, trajPath, modelPath string, width float64, minObs int) (*stochroute.Engine, error) {
	f, err := os.Open(netPath)
	if err != nil {
		return nil, err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(trajPath)
	if err != nil {
		return nil, err
	}
	trs, err := traj.ReadTrajectories(tf, g)
	tf.Close()
	if err != nil {
		return nil, err
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	model, err := hybrid.ReadModel(mf)
	mf.Close()
	if err != nil {
		return nil, err
	}
	return stochroute.NewEngineWithModel(g, trs, width, minObs, model)
}
