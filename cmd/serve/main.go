// Command serve runs the concurrent routing service: an HTTP/JSON API
// (see internal/server) answering Probabilistic Budget Routing queries
// over a loaded network and trained hybrid model.
//
// Serve either loads the artifacts produced by cmd/gennet, cmd/gentraj
// and cmd/train:
//
//	serve -net net.srg -traj trips.srt -model model.srhm -addr :8080
//
// or, for a self-contained demo, generates a synthetic city and trains
// a model in-process:
//
//	serve -synthetic -rows 20 -cols 20 -addr :8080
//
// Unless -ingest=false, the service also accepts live trajectories on
// POST /ingest (stream them with cmd/replay), monitors them for
// distribution drift against the serving model, and retrains +
// hot-swaps the model in the background when drift fires (or every
// -rebuild-every trajectories). /stats reports the model epoch and the
// write path's counters.
//
// Observability: GET /metrics serves the Prometheus text exposition
// (disable with -metrics=false); -slow-query-ms logs a structured
// slow_query line for every route request over the threshold, and
// -trace-sample 100 traces 1 in 100 requests regardless of latency.
// Both kinds of line carry the request's X-Request-ID, which the
// server echoes to the client, so logs join to responses exactly.
//
// With -span-sample N the service additionally records a phase-level
// span tree for 1 in N requests (and for every request arriving with a
// sampled W3C traceparent header), retains the most recent -trace-store
// of them — slow and error traces preferentially — and serves them as
// JSON on GET /debug/traces. Background rebuilds are always traced.
// Scrapers that Accept application/openmetrics-text get latency
// histogram buckets annotated with exemplar trace IDs that resolve in
// /debug/traces?trace_id=....
//
// With -pprof 127.0.0.1:6060 the process additionally serves
// net/http/pprof on that separate loopback listener, so CPU and
// allocation profiles of the serving kernel can be captured in
// production without exposing profiling through the public API
// address.
//
// SIGINT/SIGTERM shut the server down gracefully, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stochroute"
	"stochroute/internal/graph"
	"stochroute/internal/hybrid"
	"stochroute/internal/ingest"
	"stochroute/internal/obs"
	"stochroute/internal/server"
	"stochroute/internal/traj"
)

// The engine is the server's backend and the ingestor's swap target;
// keep both contracts checked here, where the three meet.
var (
	_ server.Backend = (*stochroute.Engine)(nil)
	_ ingest.Target  = (*stochroute.Engine)(nil)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	netPath := flag.String("net", "net.srg", "network file (SRG1)")
	trajPath := flag.String("traj", "trips.srt", "trajectory file (SRT1), used to rebuild edge statistics")
	modelPath := flag.String("model", "model.srhm", "trained model file (SRHM)")
	width := flag.Float64("width", 2, "histogram grid width in seconds")
	minObs := flag.Int("min-obs", 20, "minimum pair observations")
	landmarks := flag.Int("landmarks", 0, "ALT landmarks: precompute this many landmark distance tables per model generation so queries skip the per-query backward Dijkstra (0 disables; 16 is a good OSM-scale default)")

	synthetic := flag.Bool("synthetic", false, "generate a synthetic city and train in-process instead of loading artifacts")
	rows := flag.Int("rows", 20, "synthetic grid rows")
	cols := flag.Int("cols", 20, "synthetic grid columns")
	trajs := flag.Int("trajs", 3000, "synthetic training trajectories")
	slices := flag.Int("slices", 1, "synthetic mode: time-of-day slices to partition the cost model into (artifact mode takes the slice count from the model file)")
	peak := flag.Int("peak", -1, "synthetic mode: slice to synthesise as a rush hour (-1 = none)")
	peakShift := flag.Float64("peak-shift", 0.35, "synthetic mode: mode-prior mass shifted onto the congested mode in the -peak slice")

	timeout := flag.Duration("timeout", 10*time.Second, "per-request search timeout")
	routeCache := flag.Int("route-cache", 4096, "route cache entries (negative disables)")
	pairCache := flag.Int("pair-cache", 16384, "pair-sum cache entries (negative disables)")
	shards := flag.Int("cache-shards", 16, "cache lock shards")
	bucket := flag.Float64("budget-bucket", 15, "route cache budget bucket in seconds (0 = exact budgets)")

	ingestOn := flag.Bool("ingest", true, "enable POST /ingest with drift-triggered background retraining")
	driftWindow := flag.Int("drift-window", 400, "trajectories per drift evaluation window (negative disables drift detection)")
	driftThreshold := flag.Float64("drift-threshold", 0.12, "per-edge JS divergence counting as drifted")
	driftFrac := flag.Float64("drift-frac", 0.25, "fraction of drifted edges that triggers a rebuild")
	rebuildEvery := flag.Int("rebuild-every", 0, "unconditionally rebuild after this many ingested trajectories (0 = drift only)")
	rebuildEpochs := flag.Int("rebuild-epochs", 0, "estimator epochs per background rebuild (0 = match cmd/train's default; align with the -epochs you trained with)")
	rebuildTrainPairs := flag.Int("rebuild-train-pairs", 0, "training pairs per background rebuild (0 = default)")
	rebuildTestPairs := flag.Int("rebuild-test-pairs", 0, "held-out pairs per background rebuild (0 = default)")
	rebuildPrefixRows := flag.Int("rebuild-prefix-rows", -1, "virtual-edge phase-2 rows per rebuild (-1 = default, 0 disables the phase)")
	maxTrajectories := flag.Int("max-trajectories", 50000, "aggregate bound: past this the oldest half ages out (negative = unbounded)")
	maxIngestBytes := flag.Int64("max-ingest-bytes", 8<<20, "largest accepted /ingest body")
	maxBatch := flag.Int("max-batch", 256, "largest accepted /route/batch query count (negative disables the endpoint)")
	batchWorkers := flag.Int("batch-workers", 0, "worker pool per /route/batch request (0 = GOMAXPROCS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate loopback address (e.g. 127.0.0.1:6060); empty disables")
	metricsOn := flag.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log a structured slow_query line for route requests over this latency (0 disables)")
	traceSample := flag.Int("trace-sample", 0, "additionally trace 1 in N route requests as query_trace lines (0 disables)")
	spanSample := flag.Int("span-sample", 0, "record a span tree for 1 in N requests on GET /debug/traces (0 disables span tracing; sampled traceparent headers always trace)")
	traceStore := flag.Int("trace-store", 256, "completed traces retained for /debug/traces (plus a slow/error annex)")
	replicaID := flag.String("replica-id", "", "fleet identity: stamp every response with this X-Replica header and report it in /healthz, so cmd/gateway can attribute and verify this replica (empty = standalone)")
	flag.Parse()

	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	var (
		eng       *stochroute.Engine
		seedTrajs []traj.Trajectory
		hybridCfg hybrid.Config
		err       error
	)
	if *synthetic {
		cfg := stochroute.DefaultConfig()
		cfg.Network.Rows, cfg.Network.Cols = *rows, *cols
		cfg.Walk.NumTrajectories = *trajs
		cfg.Walk.Slices = *slices
		cfg.Hybrid.Slices = *slices
		if *slices > 1 && *peak >= 0 {
			priors, perr := traj.PeakedSlicePriors(cfg.World.ModePrior, *slices, *peak, *peakShift)
			if perr != nil {
				log.Fatal(perr)
			}
			cfg.World.SlicePriors = priors
		}
		hybridCfg = cfg.Hybrid
		log.Printf("building synthetic %dx%d engine with %d time slice(s) (this trains %d model(s); use artifact flags in production)",
			*rows, *cols, traj.NumSlices(*slices), traj.NumSlices(*slices))
		eng, err = stochroute.BuildEngine(cfg, os.Stderr)
	} else {
		hybridCfg = hybrid.DefaultConfig()
		hybridCfg.Width = *width
		hybridCfg.MinPairObs = *minObs
		eng, seedTrajs, err = loadEngine(*netPath, *trajPath, *modelPath, *width, *minObs)
	}
	if err != nil {
		log.Fatal(err)
	}
	g := eng.Graph()
	log.Printf("engine ready: %d vertices, %d edges (model epoch %d, %d time slice(s))",
		g.NumVertices(), g.NumEdges(), eng.ModelEpoch(), eng.NumSlices())

	if *landmarks > 0 {
		t0 := time.Now()
		if err := eng.SetLandmarks(*landmarks); err != nil {
			log.Fatal(err)
		}
		log.Printf("alt: %d landmark tables built in %v; swaps rebuild them before publishing", eng.Landmarks(), time.Since(t0).Round(time.Millisecond))
	}

	// One registry spans all three layers: the engine's per-slice search
	// telemetry, the ingestor's drift/swap series and the server's
	// request metrics land in a single /metrics exposition.
	reg := obs.NewRegistry()
	eng.SetSearchMetrics(obs.NewSearchMetrics(reg, eng.NumSlices()))

	// One tracer spans the read and write paths too: request span trees
	// and background rebuild traces land in the same store, so
	// /debug/traces shows both sides of a hot swap.
	var tracer *obs.Tracer
	if *spanSample > 0 {
		tracer = obs.NewTracer(
			obs.NewSpanStore(*traceStore, time.Duration(*slowQueryMS)*time.Millisecond),
			*spanSample)
	}

	var ing *ingest.Ingestor
	if *ingestOn {
		// The rebuild trains with the same hyperparameters the serving
		// model was built with (the synthetic build config, or
		// width/min-obs in artifact mode) unless overridden: an operator
		// who validated a light offline training run should not get
		// default-heavy retraining behind their back.
		if *rebuildEpochs > 0 {
			hybridCfg.Estimator.Train.Epochs = *rebuildEpochs
		}
		if *rebuildTrainPairs > 0 {
			hybridCfg.TrainPairs = *rebuildTrainPairs
		}
		if *rebuildTestPairs > 0 {
			hybridCfg.TestPairs = *rebuildTestPairs
		}
		if *rebuildPrefixRows >= 0 {
			hybridCfg.PrefixRows = *rebuildPrefixRows
		}
		ing = ingest.New(eng, ingest.Config{
			Hybrid: hybridCfg,
			Drift: ingest.DriftConfig{
				Window:        *driftWindow,
				EdgeThreshold: *driftThreshold,
				DriftedFrac:   *driftFrac,
				RebuildEvery:  *rebuildEvery,
			},
			MaxTrajectories: *maxTrajectories,
			Metrics:         obs.NewIngestMetrics(reg, eng.NumSlices()),
			Tracer:          tracer,
		}, os.Stderr)
		if len(seedTrajs) > 0 {
			accepted, rejected := ing.Seed(seedTrajs)
			log.Printf("ingest: seeded aggregate with %d baseline trajectories (%d rejected)", accepted, rejected)
		}
		log.Print("ingest: POST /ingest enabled (stream trajectories with cmd/replay)")
	}

	srv := server.New(eng, server.Config{
		RequestTimeout:      *timeout,
		RouteCache:          *routeCache,
		PairCache:           *pairCache,
		CacheShards:         *shards,
		BudgetBucketSeconds: *bucket,
		MaxBatch:            *maxBatch,
		BatchWorkers:        *batchWorkers,
		Ingestor:            ing,
		MaxIngestBytes:      *maxIngestBytes,
		Metrics:             reg,
		DisableMetrics:      !*metricsOn,
		SlowQueryThreshold:  time.Duration(*slowQueryMS) * time.Millisecond,
		TraceSample:         *traceSample,
		TraceLogger:         slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		Tracer:              tracer,
		ReplicaID:           *replicaID,
	})
	if *replicaID != "" {
		log.Printf("fleet: serving as replica %q (X-Replica stamped, /healthz reports identity)", *replicaID)
	}
	if *metricsOn {
		log.Print("metrics: GET /metrics enabled (Prometheus text exposition)")
	}
	if *slowQueryMS > 0 || *traceSample > 0 {
		log.Printf("tracing: slow-query threshold %dms, sample 1/%d (structured lines on stderr)",
			*slowQueryMS, *traceSample)
	}
	if tracer.Enabled() {
		log.Printf("spans: GET /debug/traces enabled (sampling 1/%d requests, retaining %d traces)",
			*spanSample, *traceStore)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("listening on %s", *addr)
	if err := srv.Serve(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// startPprof exposes net/http/pprof on its own listener, kept apart
// from the public API mux so profiling is never reachable through the
// serving address. The operator points it at loopback
// (127.0.0.1:6060); binding a non-loopback address draws a warning,
// since profiles can leak heap contents. Profiling is how the
// allocation-free kernel's wins stay measurable in production:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/allocs
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
func startPprof(addr string) {
	if host, _, err := net.SplitHostPort(addr); err != nil {
		log.Fatalf("pprof: invalid address %q: %v", addr, err)
	} else if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		log.Printf("WARNING: pprof listening on non-loopback %s; profiles expose process internals", addr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pprof: %v", err)
	}
	log.Printf("pprof listening on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("pprof server: %v", err)
		}
	}()
}

// loadEngine assembles an engine from saved artifacts: the network, the
// trajectories (to rebuild the per-slice knowledge bases the models
// bind to, and to seed the ingestion aggregate) and the trained model
// — a classic single-model SRHM file or a multi-slice SRH2 set, whose
// slice count the engine adopts. Nothing is retrained.
func loadEngine(netPath, trajPath, modelPath string, width float64, minObs int) (*stochroute.Engine, []traj.Trajectory, error) {
	f, err := os.Open(netPath)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(trajPath)
	if err != nil {
		return nil, nil, err
	}
	trs, err := traj.ReadTrajectoryStream(tf, g)
	tf.Close()
	if err != nil {
		return nil, nil, err
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, err
	}
	set, err := hybrid.ReadModelSet(mf)
	mf.Close()
	if err != nil {
		return nil, nil, err
	}
	eng, err := stochroute.NewEngineWithModelSet(g, trs, width, minObs, set)
	return eng, trs, err
}
