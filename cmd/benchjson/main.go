// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON array on stdout, one object per benchmark result
// line:
//
//	go test -bench=. -benchmem ./... | benchjson > bench.json
//
//	[{"name":"BenchmarkRoutingPBR-8","iterations":20,
//	  "ns_per_op":1234567.0,"b_per_op":45678,"allocs_per_op":727}, ...]
//
// CI runs it over the allocation-gate benchmark pass so every build
// uploads a machine-readable perf snapshot (BENCH_<pr>.json) next to
// the raw text — trend tooling diffs JSON, humans read the text.
// Non-benchmark lines (test output, ok/PASS markers) are ignored;
// benchmarks without -benchmem still parse, with the memory fields
// zero.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine parses one `Benchmark... N x unit [x unit ...]` line; ok is
// false for anything that is not a benchmark result.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters}
	// The remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return result{}, false
			}
		case "B/op":
			if r.BPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return result{}, false
			}
		}
	}
	return r, r.NsPerOp > 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s)\n", len(results))
}
