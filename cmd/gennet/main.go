// Command gennet generates a synthetic road network (the stand-in for
// the paper's Danish OSM extract) and writes it in the SRG1 binary
// format consumed by the other tools.
//
// Usage:
//
//	gennet -rows 80 -cols 80 -cell 110 -seed 42 -out net.srg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stochroute/internal/netgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gennet: ")

	cfg := netgen.DefaultConfig()
	rows := flag.Int("rows", cfg.Rows, "grid rows")
	cols := flag.Int("cols", cfg.Cols, "grid columns")
	cell := flag.Float64("cell", cfg.CellMeters, "intersection spacing in meters")
	drop := flag.Float64("drop", cfg.DropFrac, "fraction of residential edges dropped")
	arterial := flag.Int("arterial", cfg.ArterialEvery, "every k-th row/column is an arterial (0 = none)")
	ring := flag.Bool("ring", cfg.MotorwayRing, "add a motorway ring")
	seed := flag.Uint64("seed", cfg.Seed, "generation seed")
	out := flag.String("out", "net.srg", "output file")
	flag.Parse()

	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.CellMeters = *cell
	cfg.DropFrac = *drop
	cfg.ArterialEvery = *arterial
	cfg.MotorwayRing = *ring
	cfg.Seed = *seed

	g, err := netgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := g.WriteTo(f)
	if err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %.1f km of road, %d bytes\n",
		*out, g.NumVertices(), g.NumEdges(), g.TotalLengthMeters()/1000, n)
}
