package stochroute

import (
	"context"
	"testing"

	"stochroute/internal/hybrid"
	"stochroute/internal/routing"
)

// TestSingleSliceEquivalence is the temporal refactor's degeneracy
// proof: on a 1-slice engine (the default), RouteWithOptions with ANY
// departure must be bit-identical — route, probability, distribution
// and telemetry — to the pre-refactor query path, which is a direct
// PBR search on the serving model. Slice selection must be a pure
// no-op when K = 1.
func TestSingleSliceEquivalence(t *testing.T) {
	e := testEngine(t)
	if e.NumSlices() != 1 {
		t.Fatalf("default engine has %d slices, want 1", e.NumSlices())
	}
	qs, err := e.SampleQueries(0.5, 1.5, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	departures := []float64{0, 8 * 3600, 12*3600 + 1800, 86399, 123456}
	for qi, q := range qs {
		opt, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			continue
		}
		budget := 1.5 * opt

		// The pre-refactor path: PBR directly on the serving model with
		// per-request decision stats — exactly what Engine.Route did
		// before slices existed.
		var wantStats hybrid.QueryStats
		want, err := routing.PBR(e.Graph(), e.Model().WithStats(&wantStats), q.Source, q.Dest,
			routing.Options{Budget: budget})
		if err != nil {
			t.Fatalf("query %d: direct PBR: %v", qi, err)
		}

		for _, depart := range departures {
			got, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart})
			if err != nil {
				t.Fatalf("query %d depart %v: %v", qi, depart, err)
			}
			if got.Found != want.Found || got.Complete != want.Complete {
				t.Fatalf("query %d depart %v: found/complete (%v,%v) != (%v,%v)",
					qi, depart, got.Found, got.Complete, want.Found, want.Complete)
			}
			if got.Prob != want.Prob {
				t.Errorf("query %d depart %v: prob %v != %v", qi, depart, got.Prob, want.Prob)
			}
			if len(got.Path) != len(want.Path) {
				t.Fatalf("query %d depart %v: path length %d != %d", qi, depart, len(got.Path), len(want.Path))
			}
			for i := range want.Path {
				if got.Path[i] != want.Path[i] {
					t.Fatalf("query %d depart %v: path differs at %d", qi, depart, i)
				}
			}
			// The distribution must match bucket for bucket, bit for bit.
			if got.Dist.Min != want.Dist.Min || got.Dist.Width != want.Dist.Width || len(got.Dist.P) != len(want.Dist.P) {
				t.Fatalf("query %d depart %v: distribution shape differs", qi, depart)
			}
			for i := range want.Dist.P {
				if got.Dist.P[i] != want.Dist.P[i] {
					t.Fatalf("query %d depart %v: distribution bucket %d: %v != %v",
						qi, depart, i, got.Dist.P[i], want.Dist.P[i])
				}
			}
			// Search and cost-model telemetry.
			if got.Expansions != want.Expansions || got.GeneratedLabels != want.GeneratedLabels {
				t.Errorf("query %d depart %v: search telemetry (%d,%d) != (%d,%d)",
					qi, depart, got.Expansions, got.GeneratedLabels, want.Expansions, want.GeneratedLabels)
			}
			if got.NumConvolved != wantStats.Convolved || got.NumEstimated != wantStats.Estimated {
				t.Errorf("query %d depart %v: decisions (%d,%d) != (%d,%d)",
					qi, depart, got.NumConvolved, got.NumEstimated, wantStats.Convolved, wantStats.Estimated)
			}
			if got.Slice != 0 {
				t.Errorf("query %d depart %v: slice %d, want 0", qi, depart, got.Slice)
			}
			if got.ModelEpoch != e.ModelEpoch() {
				t.Errorf("query %d depart %v: epoch %d, want %d", qi, depart, got.ModelEpoch, e.ModelEpoch())
			}
		}
	}
}

// TestSingleSliceBatchEquivalence: the batched path under departures
// on a 1-slice engine carries the global epoch on every item and
// answers exactly like the unbatched path.
func TestSingleSliceBatchEquivalence(t *testing.T) {
	e := testEngine(t)
	qs, err := e.SampleQueries(0.5, 1.2, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	var queries []BatchQuery
	for i, q := range qs {
		opt, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			continue
		}
		queries = append(queries, BatchQuery{
			Source: q.Source, Dest: q.Dest,
			Opts: RouteOptions{Budget: 1.4 * opt, Departure: float64(i * 20000)},
		})
	}
	items := e.RouteBatch(context.Background(), queries, 2)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if it.Epoch != e.ModelEpoch() {
			t.Errorf("item %d: epoch %d != %d", i, it.Epoch, e.ModelEpoch())
		}
		want, err := e.RouteWithOptions(queries[i].Source, queries[i].Dest, queries[i].Opts)
		if err != nil {
			t.Fatal(err)
		}
		if it.Result.Prob != want.Prob || len(it.Result.Path) != len(want.Path) {
			t.Errorf("item %d: batched answer differs from unbatched", i)
		}
	}
}
