package stochroute

import (
	"context"
	"math"
	"sync"
	"testing"

	"stochroute/internal/graph"
	"stochroute/internal/hist"
	"stochroute/internal/hybrid"
	"stochroute/internal/netgen"
	"stochroute/internal/routing"
	"stochroute/internal/traj"
)

// requireSameSearch asserts two routing results are the same search:
// identical route, bit-identical probability and distribution, and
// identical search + cost-model telemetry.
func requireSameSearch(t *testing.T, label string, got, want *RouteResult) {
	t.Helper()
	if got.Found != want.Found || got.Complete != want.Complete {
		t.Fatalf("%s: found/complete (%v,%v) != (%v,%v)", label, got.Found, got.Complete, want.Found, want.Complete)
	}
	if got.Prob != want.Prob {
		t.Fatalf("%s: prob %v != %v (not bit-equal)", label, got.Prob, want.Prob)
	}
	if len(got.Path) != len(want.Path) {
		t.Fatalf("%s: path length %d != %d", label, len(got.Path), len(want.Path))
	}
	for i := range want.Path {
		if got.Path[i] != want.Path[i] {
			t.Fatalf("%s: path differs at %d", label, i)
		}
	}
	if (got.Dist == nil) != (want.Dist == nil) {
		t.Fatalf("%s: dist nil mismatch", label)
	}
	if got.Dist != nil {
		if got.Dist.Min != want.Dist.Min || got.Dist.Width != want.Dist.Width || len(got.Dist.P) != len(want.Dist.P) {
			t.Fatalf("%s: distribution shape differs", label)
		}
		for i := range want.Dist.P {
			if got.Dist.P[i] != want.Dist.P[i] {
				t.Fatalf("%s: dist bucket %d: %v != %v", label, i, got.Dist.P[i], want.Dist.P[i])
			}
		}
	}
	if got.Expansions != want.Expansions || got.GeneratedLabels != want.GeneratedLabels ||
		got.PrunedPotential != want.PrunedPotential || got.PrunedPivot != want.PrunedPivot ||
		got.PrunedDominance != want.PrunedDominance {
		t.Fatalf("%s: search telemetry differs:\n  got:  exp=%d gen=%d pot=%d piv=%d dom=%d\n  want: exp=%d gen=%d pot=%d piv=%d dom=%d",
			label,
			got.Expansions, got.GeneratedLabels, got.PrunedPotential, got.PrunedPivot, got.PrunedDominance,
			want.Expansions, want.GeneratedLabels, want.PrunedPotential, want.PrunedPivot, want.PrunedDominance)
	}
	if got.NumConvolved != want.NumConvolved || got.NumEstimated != want.NumEstimated {
		t.Fatalf("%s: decisions (%d,%d) != (%d,%d)", label,
			got.NumConvolved, got.NumEstimated, want.NumConvolved, want.NumEstimated)
	}
}

// TestTimeExpandedK1Equivalence: on a 1-slice engine there is only one
// model, so time-expanded routing must be bit-identical to the classic
// path for EVERY departure — route, probability, distribution,
// telemetry and epoch — with SliceSeq reporting slice 0 per edge.
func TestTimeExpandedK1Equivalence(t *testing.T) {
	e := testEngine(t)
	if e.NumSlices() != 1 {
		t.Fatalf("default engine has %d slices, want 1", e.NumSlices())
	}
	qs, err := e.SampleQueries(0.5, 1.5, 4, 171)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		opt, err := e.OptimisticTime(q.Source, q.Dest)
		if err != nil {
			continue
		}
		for _, depart := range []float64{0, 6 * 3600, 43100, 86000} {
			budget := 1.5 * opt
			want, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart})
			if err != nil {
				t.Fatalf("query %d: classic: %v", qi, err)
			}
			got, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart, TimeExpanded: true})
			if err != nil {
				t.Fatalf("query %d: time-expanded: %v", qi, err)
			}
			requireSameSearch(t, "K=1 expanded vs classic", got, want)
			if got.ModelEpoch != want.ModelEpoch || got.ModelEpoch != e.ModelEpoch() {
				t.Fatalf("query %d: epochs differ: %d vs %d (engine %d)", qi, got.ModelEpoch, want.ModelEpoch, e.ModelEpoch())
			}
			if want.SliceSeq != nil {
				t.Fatalf("query %d: classic result carries a slice sequence", qi)
			}
			if got.Found {
				if len(got.SliceSeq) != len(got.Path) {
					t.Fatalf("query %d: slice seq length %d != path length %d", qi, len(got.SliceSeq), len(got.Path))
				}
				for i, s := range got.SliceSeq {
					if s != 0 {
						t.Fatalf("query %d: slice seq[%d] = %d on a 1-slice engine", qi, i, s)
					}
				}
			}
		}
	}

	// The batched path under the flag carries the (global == slice)
	// epoch and the same answers.
	q := qs[0]
	opt, err := e.OptimisticTime(q.Source, q.Dest)
	if err != nil {
		t.Fatal(err)
	}
	items := e.RouteBatch(context.Background(), []BatchQuery{
		{Source: q.Source, Dest: q.Dest, Opts: RouteOptions{Budget: 1.5 * opt, TimeExpanded: true}},
	}, 1)
	if items[0].Err != nil {
		t.Fatal(items[0].Err)
	}
	if items[0].Epoch != e.ModelEpoch() {
		t.Fatalf("batched time-expanded item epoch %d, want %d", items[0].Epoch, e.ModelEpoch())
	}
}

// The dedicated 2-slice world engine of the time-expanded tests: slice
// 0 is a hard rush hour (most mode mass shifted onto the most congested
// mode), slice 1 keeps the base prior, and the serving models are
// per-slice convolution models built straight from slice-labelled
// trajectories — no training, so the whole setup is fast and
// deterministic while the slice contrast stays strong.
var (
	expOnce   sync.Once
	expEng    *Engine
	expEngErr error
)

func expandedTestEngine(t testing.TB) *Engine {
	t.Helper()
	expOnce.Do(func() {
		expEng, expEngErr = buildExpandedTestEngine()
	})
	if expEngErr != nil {
		t.Fatalf("expanded test engine: %v", expEngErr)
	}
	return expEng
}

func buildExpandedTestEngine() (*Engine, error) {
	const K = 2
	ncfg := netgen.DefaultConfig()
	ncfg.Rows, ncfg.Cols = 14, 14
	ncfg.CellMeters = 130
	g, err := netgen.Generate(ncfg)
	if err != nil {
		return nil, err
	}
	wcfg := traj.DefaultWorldConfig()
	wcfg.NoiseProb = 0
	wcfg.SlicePriors, err = traj.PeakedSlicePriors(wcfg.ModePrior, K, 0, 0.75)
	if err != nil {
		return nil, err
	}
	world, err := traj.NewWorld(g, wcfg)
	if err != nil {
		return nil, err
	}
	trajs, err := traj.GenerateTrajectories(world, traj.WalkConfig{
		NumTrajectories: 6000, MinEdges: 4, MaxEdges: 24, Seed: 5,
		RouteFraction: 0.5, NumRoutes: 600, RouteJitter: 0.25,
		Slices: K,
	})
	if err != nil {
		return nil, err
	}
	width := wcfg.BucketWidth
	obs := traj.NewSlicedObservations(g, width, K)
	obs.Collect(trajs)
	models := make([]*hybrid.Model, K)
	for s := 0; s < K; s++ {
		kb, err := hybrid.BuildKnowledgeBase(g, obs.Slice(s), width, 10)
		if err != nil {
			return nil, err
		}
		models[s] = &hybrid.Model{KB: kb} // no estimator: always convolve
	}
	set, err := hybrid.NewModelSet(models)
	if err != nil {
		return nil, err
	}
	eng, err := NewEngineWithModelSet(g, trajs, width, 10, set)
	if err != nil {
		return nil, err
	}
	eng.world = world
	return eng, nil
}

// longPeakQuery picks the sampled query with the largest optimistic
// travel time — the trip most likely to cross a slice boundary.
func longPeakQuery(t *testing.T, e *Engine) (q Query, optimistic float64) {
	t.Helper()
	qs, err := e.SampleQueries(1.2, 2.6, 24, 9)
	if err != nil && len(qs) == 0 {
		t.Fatalf("SampleQueries: %v", err)
	}
	best := -1.0
	for _, cand := range qs {
		opt, err := e.OptimisticTime(cand.Source, cand.Dest)
		if err != nil {
			continue
		}
		if opt > best {
			best, q = opt, cand
		}
	}
	if best <= 0 {
		t.Fatal("no reachable sampled query")
	}
	return q, best
}

// TestTimeExpandedShortTripEquivalence: a trip whose whole search
// horizon stays inside its departure slice must be bit-identical to
// departure-slice routing even with time-expanded lookup on — slice
// re-selection, frontier partitioning and the potential bound all
// degenerate to the classic search.
func TestTimeExpandedShortTripEquivalence(t *testing.T) {
	e := expandedTestEngine(t)
	qs, err := e.SampleQueries(0.4, 1.0, 6, 31)
	if err != nil && len(qs) == 0 {
		t.Fatalf("SampleQueries: %v", err)
	}
	for _, slice := range []int{0, 1} {
		depart := traj.SliceStart(slice, e.NumSlices()) + 900
		for qi, q := range qs {
			opt, err := e.OptimisticTime(q.Source, q.Dest)
			if err != nil {
				continue
			}
			budget := 1.5 * opt
			// The search horizon (1.3 x budget plus one bucket) must fit
			// inside the departure slice for the equivalence to be exact.
			if depart+1.3*budget+e.Model().Width() >= traj.SliceStart(slice+1, e.NumSlices()) {
				t.Fatalf("test setup: horizon leaves slice %d", slice)
			}
			want, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart})
			if err != nil {
				t.Fatalf("slice %d query %d: classic: %v", slice, qi, err)
			}
			got, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart, TimeExpanded: true})
			if err != nil {
				t.Fatalf("slice %d query %d: expanded: %v", slice, qi, err)
			}
			requireSameSearch(t, "short trip expanded vs classic", got, want)
			if got.Slice != slice || want.Slice != slice {
				t.Fatalf("slice %d query %d: result slices %d/%d", slice, qi, got.Slice, want.Slice)
			}
			for i, s := range got.SliceSeq {
				if s != slice {
					t.Fatalf("slice %d query %d: slice seq[%d] = %d", slice, qi, i, s)
				}
			}
		}
	}
}

// TestTimeExpandedCrossesBoundaryAccuracy is the payoff test: for a
// long trip departing late in the rush-hour slice, time-expanded
// routing's distribution must be strictly closer (in KL divergence) to
// the world's time-expanded path truth than the departure-slice
// distribution for the same path — the departure-slice model keeps
// paying peak costs after the trip has crossed into the off-peak
// slice.
func TestTimeExpandedCrossesBoundaryAccuracy(t *testing.T) {
	e := expandedTestEngine(t)
	k := e.NumSlices()
	q, opt := longPeakQuery(t, e)
	budget := 3 * opt

	// First pass: measure the trip's mean under the time-expanded
	// model from a mid-peak departure, then place the departure so the
	// trip straddles the slice 0 -> slice 1 boundary.
	probe, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: traj.SliceMid(0, k), TimeExpanded: true})
	if err != nil || !probe.Found {
		t.Fatalf("probe route: err=%v found=%v", err, probe != nil && probe.Found)
	}
	meanTrip := probe.Dist.Mean()
	boundary := traj.SliceStart(1, k)
	depart := boundary - meanTrip/2
	if depart <= traj.SliceStart(0, k) {
		t.Fatalf("trip mean %.0fs too long for the slice layout", meanTrip)
	}

	res, err := e.RouteWithOptions(q.Source, q.Dest, RouteOptions{Budget: budget, Departure: depart, TimeExpanded: true})
	if err != nil || !res.Found {
		t.Fatalf("boundary route: err=%v", err)
	}
	if res.Slice != 0 {
		t.Fatalf("departure slice %d, want 0", res.Slice)
	}
	if res.ModelEpoch != e.ModelEpoch() {
		t.Fatalf("time-expanded epoch %d, want global %d", res.ModelEpoch, e.ModelEpoch())
	}
	path := res.Path

	// The model must have actually crossed: the slice sequence starts
	// in the peak and ends off-peak.
	if len(res.SliceSeq) != len(path) {
		t.Fatalf("slice seq length %d != path length %d", len(res.SliceSeq), len(path))
	}
	if res.SliceSeq[0] != 0 || res.SliceSeq[len(res.SliceSeq)-1] != 1 {
		t.Fatalf("slice sequence %v does not cross the 0->1 boundary", res.SliceSeq)
	}
	for i := 1; i < len(res.SliceSeq); i++ {
		if res.SliceSeq[i] < res.SliceSeq[i-1] {
			t.Fatalf("slice sequence %v is not monotone for an intra-day trip", res.SliceSeq)
		}
	}

	// Accuracy on the chosen path, against the world's time-expanded
	// oracle.
	truth, truthSlices, err := e.TrueDistributionExpanded(depart, path)
	if err != nil {
		t.Fatal(err)
	}
	if truthSlices[0] != 0 || truthSlices[len(truthSlices)-1] != 1 {
		t.Fatalf("oracle slice sequence %v does not cross the boundary", truthSlices)
	}
	expandedDist, modelSlices, err := e.PathDistributionExpanded(depart, path)
	if err != nil {
		t.Fatal(err)
	}
	if modelSlices[0] != 0 || modelSlices[len(modelSlices)-1] != 1 {
		t.Fatalf("model slice sequence %v does not cross the boundary", modelSlices)
	}
	departDist, err := e.PathDistributionAt(depart, path)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1e-9
	klExpanded, err := hist.KL(truth, expandedDist, eps)
	if err != nil {
		t.Fatal(err)
	}
	klDeparture, err := hist.KL(truth, departDist, eps)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trip mean %.0fs depart %.0fs: KL(truth||expanded)=%.4f KL(truth||departure-slice)=%.4f",
		meanTrip, depart, klExpanded, klDeparture)
	if !(klExpanded < klDeparture) {
		t.Fatalf("time-expanded model no closer to truth: KL expanded %.4f vs departure %.4f", klExpanded, klDeparture)
	}
	// The win must come from the temporal structure, not noise: the
	// departure-slice model's mean should overshoot the truth's by
	// clearly more than the expanded model's.
	if math.Abs(expandedDist.Mean()-truth.Mean()) >= math.Abs(departDist.Mean()-truth.Mean()) {
		t.Fatalf("expanded mean error %.1fs not below departure-slice mean error %.1fs",
			math.Abs(expandedDist.Mean()-truth.Mean()), math.Abs(departDist.Mean()-truth.Mean()))
	}
}

// temporalPlainView hides the scratch half of a TemporalScratchCoster,
// forcing PBR's time-expanded search onto the heap path.
type temporalPlainView struct {
	tc hybrid.TemporalCoster
}

func (p temporalPlainView) InitialHist(e graph.EdgeID) *hist.Hist { return p.tc.InitialHist(e) }
func (p temporalPlainView) Extend(v *hist.Hist, lastEdge, next graph.EdgeID) *hist.Hist {
	return p.tc.Extend(v, lastEdge, next)
}
func (p temporalPlainView) MinEdgeTime(e graph.EdgeID) float64 { return p.tc.MinEdgeTime(e) }
func (p temporalPlainView) Width() float64                     { return p.tc.Width() }
func (p temporalPlainView) SliceAtElapsed(elapsed float64) int {
	return p.tc.SliceAtElapsed(elapsed)
}
func (p temporalPlainView) MinEdgeTimeWithin(e graph.EdgeID, horizon float64) float64 {
	return p.tc.MinEdgeTimeWithin(e, horizon)
}
func (p temporalPlainView) ExtendElapsed(elapsed float64, v *hist.Hist, lastEdge, next graph.EdgeID) *hist.Hist {
	return p.tc.ExtendElapsed(elapsed, v, lastEdge, next)
}

// TestTimeExpandedScratchKernelEquivalence: the time-expanded search on
// the allocation-free kernel must be bit-identical to the same search
// on the heap path, slice sequence included — the arena only changes
// where the floats live.
func TestTimeExpandedScratchKernelEquivalence(t *testing.T) {
	e := expandedTestEngine(t)
	set := e.ModelSet()
	q, opt := longPeakQuery(t, e)
	boundary := traj.SliceStart(1, e.NumSlices())
	for _, depart := range []float64{boundary - 600, boundary - 120, traj.SliceMid(0, e.NumSlices())} {
		opts := routing.Options{Budget: 2.5 * opt, Departure: depart, TimeExpanded: true}
		kernel, err := routing.PBR(e.Graph(), set.TimeExpandedCoster(depart, nil), q.Source, q.Dest, opts)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := routing.PBR(e.Graph(), temporalPlainView{set.TimeExpandedCoster(depart, nil)}, q.Source, q.Dest, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSearch(t, "temporal kernel vs heap", kernel, plain)
		if len(kernel.SliceSeq) != len(plain.SliceSeq) {
			t.Fatalf("slice seq lengths %d vs %d", len(kernel.SliceSeq), len(plain.SliceSeq))
		}
		for i := range kernel.SliceSeq {
			if kernel.SliceSeq[i] != plain.SliceSeq[i] {
				t.Fatalf("slice seq differs at %d: %d vs %d", i, kernel.SliceSeq[i], plain.SliceSeq[i])
			}
		}
	}
}
